"""Troupe descriptors.

At the protocol level a troupe is "a sequence of module addresses" (§4.3)
together with a permanently unique troupe ID (§6.3).  The troupe ID doubles
as an incarnation number: whenever the membership changes, the ID changes
with it atomically, and servers reject call messages bearing a stale
destination troupe ID (§6.2).
"""

from __future__ import annotations

import itertools
from typing import Iterable, NamedTuple, Tuple

from repro.net.addresses import ModuleAddress, ProcessAddress

#: Troupe IDs are permanently unique 64-bit numbers; 0 means "unreplicated
#: peer" (a plain client with no troupe identity).
TroupeId = int

NO_TROUPE: TroupeId = 0

_troupe_id_counter = itertools.count(1)


def new_troupe_id() -> TroupeId:
    """A fresh, never-reused troupe ID.

    In the real system the binding agent allocates these; a process-wide
    counter gives the same permanent-uniqueness guarantee in simulation.
    """
    return next(_troupe_id_counter)


class TroupeDescriptor(NamedTuple):
    """The client-visible representation of a troupe: name, ID, members."""

    name: str
    troupe_id: TroupeId
    members: Tuple[ModuleAddress, ...]

    @property
    def degree(self) -> int:
        """The degree of replication."""
        return len(self.members)

    @property
    def processes(self) -> Tuple[ProcessAddress, ...]:
        return tuple(member.process for member in self.members)

    def with_members(self, members: Iterable[ModuleAddress],
                     troupe_id: TroupeId) -> "TroupeDescriptor":
        """A new descriptor after a membership change: the ID must change
        atomically with the membership (§6.2)."""
        members = tuple(members)
        if troupe_id == self.troupe_id and set(members) != set(self.members):
            raise ValueError(
                "membership changed but troupe ID did not (%r)" % troupe_id)
        return TroupeDescriptor(self.name, troupe_id, members)

    def __str__(self) -> str:
        return "troupe %s#%d {%s}" % (
            self.name, self.troupe_id,
            ", ".join(str(m) for m in self.members))
