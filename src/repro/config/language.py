"""The troupe configuration language (§7.5.2, Figure 7.12).

"The troupe configuration language is an extension of propositional logic
with variables that range over the machines in the distributed system."
Machines have attribute lists (name/value pairs: strings, numbers, truth
values); a Boolean-valued attribute is a *property* and needs no
comparison.  A troupe is specified as

    troupe(x1, ..., xn) where <formula>

for example:

    troupe(x, y, z) where
        x.memory >= 10 and x.has-floating-point
        and y.name = "UCB-Monet"
        and not z.name = "UCB-Monet"

The troupe members are required to be distinct machines; the language
deliberately provides no machine-equality test, only attribute
comparisons, and a specification always fixes the troupe size (§7.5.2
notes both design points).
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Sequence


class ConfigParseError(Exception):
    """The specification text is not well-formed."""


# -- AST -----------------------------------------------------------------

class _Node:
    def evaluate(self, assignment: Dict[str, Any]) -> bool:
        raise NotImplementedError


class _Or(_Node):
    def __init__(self, terms):
        self.terms = terms

    def evaluate(self, assignment):
        return any(t.evaluate(assignment) for t in self.terms)


class _And(_Node):
    def __init__(self, terms):
        self.terms = terms

    def evaluate(self, assignment):
        return all(t.evaluate(assignment) for t in self.terms)


class _Not(_Node):
    def __init__(self, term):
        self.term = term

    def evaluate(self, assignment):
        return not self.term.evaluate(assignment)


class _Comparison(_Node):
    OPS = {
        "=": lambda a, b: a == b,
        "#": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }

    def __init__(self, var: str, attr: str, op: str, literal: Any):
        self.var = var
        self.attr = attr
        self.op = op
        self.literal = literal

    def evaluate(self, assignment):
        machine = assignment[self.var]
        value = machine.attribute(self.attr)
        if value is None:
            return False
        try:
            return self.OPS[self.op](value, self.literal)
        except TypeError:
            return False  # comparing a string attribute with a number, etc.


class _Property(_Node):
    """A bare attribute reference: true iff the attribute is truthy."""

    def __init__(self, var: str, attr: str):
        self.var = var
        self.attr = attr

    def evaluate(self, assignment):
        return bool(assignment[self.var].attribute(self.attr))


class TroupeSpecification:
    """A parsed specification: variables plus the formula over them."""

    def __init__(self, variables: Sequence[str], formula: _Node,
                 text: str = ""):
        self.variables = list(variables)
        self.formula = formula
        self.text = text

    @property
    def degree(self) -> int:
        return len(self.variables)

    def satisfied_by(self, machines: Sequence) -> bool:
        """True iff assigning machines (in order) to the variables
        satisfies the formula.  Members must be distinct machines."""
        if len(machines) != len(self.variables):
            return False
        if len(set(id(m) for m in machines)) != len(machines):
            return False
        assignment = dict(zip(self.variables, machines))
        return self.formula.evaluate(assignment)

    def __repr__(self) -> str:
        if self.text:
            return self.text
        return "troupe(%s) where ..." % ", ".join(self.variables)


# -- parser ----------------------------------------------------------------

_TOKEN_RE = re.compile(r"""
    (?P<string>"[^"]*")
  | (?P<number>-?\d+(\.\d+)?)
  | (?P<word>[A-Za-z][A-Za-z0-9_-]*)
  | (?P<op><=|>=|[=#<>().,])
  | (?P<ws>\s+)
  | (?P<bad>.)
""", re.VERBOSE)


def _tokenize(text: str) -> List[str]:
    tokens = []
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup
        if kind == "ws":
            continue
        if kind == "bad":
            raise ConfigParseError("unexpected character %r" % match.group())
        tokens.append(match.group())
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.pos = 0
        self.variables: List[str] = []

    def peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self):
        if self.pos >= len(self.tokens):
            raise ConfigParseError("unexpected end of specification")
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, literal):
        token = self.next()
        if token != literal:
            raise ConfigParseError("expected %r, found %r" % (literal, token))

    def parse(self) -> TroupeSpecification:
        self.expect("troupe")
        self.expect("(")
        while True:
            var = self.next()
            if not re.match(r"[A-Za-z]", var):
                raise ConfigParseError("bad variable name %r" % var)
            if var in self.variables:
                raise ConfigParseError("duplicate variable %r" % var)
            self.variables.append(var)
            if self.peek() != ",":
                break
            self.next()
        self.expect(")")
        self.expect("where")
        formula = self._disjunction()
        if self.peek() is not None:
            raise ConfigParseError("trailing tokens: %r" % self.peek())
        return TroupeSpecification(self.variables, formula)

    def _disjunction(self):
        terms = [self._conjunction()]
        while self.peek() == "or":
            self.next()
            terms.append(self._conjunction())
        return terms[0] if len(terms) == 1 else _Or(terms)

    def _conjunction(self):
        terms = [self._negation()]
        while self.peek() == "and":
            self.next()
            terms.append(self._negation())
        return terms[0] if len(terms) == 1 else _And(terms)

    def _negation(self):
        if self.peek() == "not":
            self.next()
            return _Not(self._negation())
        return self._primary()

    def _primary(self):
        if self.peek() == "(":
            self.next()
            inner = self._disjunction()
            self.expect(")")
            return inner
        var = self.next()
        if var not in self.variables:
            raise ConfigParseError("unknown variable %r" % var)
        self.expect(".")
        attr = self.next()
        if not re.match(r"[A-Za-z]", attr):
            raise ConfigParseError("bad attribute name %r" % attr)
        if self.peek() in _Comparison.OPS:
            op = self.next()
            literal = self._literal()
            return _Comparison(var, attr, op, literal)
        return _Property(var, attr)

    def _literal(self):
        token = self.next()
        if token.startswith('"'):
            return token[1:-1]
        try:
            if "." in token:
                return float(token)
            return int(token)
        except ValueError:
            raise ConfigParseError("bad literal %r" % token)


def parse_specification(text: str) -> TroupeSpecification:
    """Parse ``troupe(x, ...) where <formula>``."""
    spec = _Parser(text).parse()
    spec.text = " ".join(text.split())
    return spec
