"""Programming-in-the-large: troupe configuration (§7.5).

A *configuration* is a mapping from troupes to sets of machines.  The
configuration language (Figure 7.12) lets a programmer specify the set of
acceptable configurations — the degree of replication and the required
machine attributes — without modifying the module being replicated; the
configuration manager instantiates and reconfigures troupes to satisfy
those specifications.
"""

from repro.config.language import (
    ConfigParseError,
    TroupeSpecification,
    parse_specification,
)
from repro.config.manager import (
    ConfigurationError,
    ConfigurationManager,
)

__all__ = [
    "ConfigParseError",
    "ConfigurationError",
    "ConfigurationManager",
    "TroupeSpecification",
    "parse_specification",
]
