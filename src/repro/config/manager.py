"""The troupe configuration manager (§7.5.3).

Both instantiating and reconfiguring a troupe are instances of the *troupe
extension problem*: given a specification phi(x1..xn), a universe U of
machines, and a current set M, find M' ⊆ U satisfying phi as close to M
as possible (minimum symmetric difference |M' ⊕ M|).

The search is an exhaustive backtracking enumeration, as in the paper's
Lisp implementation; "the exponential-time complexity ... is acceptable
given the small number of variables in most troupe specifications."
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Optional, Sequence, Set

from repro.config.language import TroupeSpecification
from repro.host.machine import Machine


class ConfigurationError(Exception):
    """No acceptable configuration exists."""


class ConfigurationManager:
    """Searches a machine-attribute database for troupe configurations
    and (optionally) drives instantiation through a starter callback."""

    def __init__(self, universe: Sequence[Machine]):
        self.universe = list(universe)

    def usable_machines(self) -> List[Machine]:
        return [m for m in self.universe if m.up]

    # -- the troupe extension problem -------------------------------------

    def extend_troupe(self, spec: TroupeSpecification,
                      old: Sequence[Machine] = ()) -> List[Machine]:
        """Solve the troupe extension problem: the assignment of machines
        to the specification's variables that satisfies the formula and
        minimizes the symmetric difference with ``old``.

        Crashed machines are excluded from the universe.  Raises
        :class:`ConfigurationError` when no assignment satisfies phi.
        """
        candidates = self.usable_machines()
        old_set: Set[int] = {id(m) for m in old}
        best: Optional[List[Machine]] = None
        best_cost = None
        for assignment in itertools.permutations(candidates, spec.degree):
            if not spec.satisfied_by(assignment):
                continue
            new_set = {id(m) for m in assignment}
            cost = len(new_set ^ old_set)
            if best_cost is None or cost < best_cost:
                best = list(assignment)
                best_cost = cost
                if cost == self._lower_bound(spec.degree, len(old_set)):
                    break
        if best is None:
            raise ConfigurationError(
                "no configuration of %d machines satisfies: %r" % (
                    spec.degree, spec))
        return best

    @staticmethod
    def _lower_bound(degree: int, old_size: int) -> int:
        """|M' ^ M| is at least the difference in cardinality."""
        return abs(degree - old_size)

    def instantiate(self, spec: TroupeSpecification) -> List[Machine]:
        """The instantiation problem is the M = empty-set case (§7.5.3)."""
        return self.extend_troupe(spec, old=())

    # -- deployment glue -----------------------------------------------------

    def deploy(self, spec: TroupeSpecification, name: str,
               start_member: Callable[[Machine], "object"],
               current: Sequence[Machine] = ()):
        """Generator: choose machines and start a member on each new one.

        ``start_member(machine)`` starts a member process and may be a
        generator (it usually registers with the binding agent); members
        on machines already in ``current`` are left running.  Returns the
        chosen machine list.
        """
        chosen = self.extend_troupe(spec, old=current)
        current_ids = {id(m) for m in current}
        for machine in chosen:
            if id(machine) not in current_ids:
                result = start_member(machine)
                if hasattr(result, "send"):
                    yield from result
        return chosen
