"""The Ringmaster: the Circus binding agent (§6.3).

The Ringmaster is a specialized name server that enables programs to
import and export troupes by name.  It is itself a troupe whose procedures
are invoked via replicated procedure calls, so its registry state stays
consistent across members as long as the members are deterministic —
every mutation arrives as a replicated call processed in the same order
(serial execution) at every member.

Bootstrap uses the paper's "degenerate binding mechanism": the Ringmaster
listens on a well-known port on each machine, and the set of machines
running it comes from a configuration list (§6.3).

Interface (Figure 6.1, plus the §6.1 rebind and enumeration for the
garbage collector):

    0  register_troupe(name, members) -> troupe_id
    1  add_troupe_member(name, member) -> troupe_id
    2  remove_troupe_member(name, member) -> troupe_id
    3  lookup_troupe_by_name(name) -> (troupe_id, members)
    4  lookup_troupe_by_id(id) -> members
    5  rebind(name, old_id) -> (troupe_id, members)
    6  list_troupes() -> [names]

``add_troupe_member`` and ``remove_troupe_member`` atomically change both
membership and troupe ID, running ``set_troupe_id`` at every member
(Figure 6.2); atomicity comes from the serial execution of binding calls
at each Ringmaster member.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from repro.binding import wire
from repro.core.runtime import (
    CONTROL_MODULE,
    CallContext,
    ExportedModule,
    RuntimeConfig,
    SET_TROUPE_ID_PROC,
    TroupeRuntime,
)
from repro.core.troupe import TroupeDescriptor, TroupeId
from repro.host.machine import Machine
from repro.net.addresses import ModuleAddress, ProcessAddress
from repro.obs import events as obs_events
from repro.rpc.messages import RemoteError

RINGMASTER_MODULE_NAME = "ringmaster"
RINGMASTER_PORT = 369
#: the Ringmaster's own (well-known) troupe ID — it cannot be used to
#: import itself, so its identity is fixed by configuration (§6.3).
RINGMASTER_TROUPE_ID: TroupeId = (1 << 62) + 1
#: Ringmaster-allocated troupe IDs live in their own space, disjoint from
#: locally allocated ones.
ALLOCATED_ID_BASE: TroupeId = 1 << 32

REGISTER_TROUPE_PROC = 0
ADD_TROUPE_MEMBER_PROC = 1
REMOVE_TROUPE_MEMBER_PROC = 2
LOOKUP_BY_NAME_PROC = 3
LOOKUP_BY_ID_PROC = 4
REBIND_PROC = 5
LIST_TROUPES_PROC = 6

NOT_FOUND_ERROR = "NotFound"
ALREADY_EXISTS_ERROR = "AlreadyExists"
LAST_MEMBER_ERROR = "LastMember"


class BindingError(Exception):
    """A binding operation failed (unknown name, duplicate registration)."""


class RingmasterMember:
    """One replica of the Ringmaster binding agent."""

    def __init__(self, process, port: int = RINGMASTER_PORT,
                 config: Optional[RuntimeConfig] = None):
        self.runtime = TroupeRuntime(
            process, port=port,
            config=config or RuntimeConfig(execution="serial"),
            troupe_id=RINGMASTER_TROUPE_ID,
            resolver=self.resolve)
        #: name -> (troupe_id, [ModuleAddress])
        self.by_name: Dict[str, Tuple[TroupeId, List[ModuleAddress]]] = {}
        #: troupe_id -> name
        self.by_id: Dict[TroupeId, str] = {}
        self._next_id = 0
        # Deterministic counter for the nested set_troupe_id calls: every
        # Ringmaster member processes binding mutations serially in the
        # same order, so corresponding nested calls get the same number —
        # and numbers on the (ringmaster -> target) channel never repeat.
        self._nested_calls = 0
        self.descriptor: Optional[TroupeDescriptor] = None
        module = ExportedModule(RINGMASTER_MODULE_NAME, {
            REGISTER_TROUPE_PROC: self._register_troupe,
            ADD_TROUPE_MEMBER_PROC: self._add_troupe_member,
            REMOVE_TROUPE_MEMBER_PROC: self._remove_troupe_member,
            LOOKUP_BY_NAME_PROC: self._lookup_by_name,
            LOOKUP_BY_ID_PROC: self._lookup_by_id,
            REBIND_PROC: self._rebind,
            LIST_TROUPES_PROC: self._list_troupes,
        })
        self.module_addr = self.runtime.export(module)
        self.runtime.start_server()

    # -- resolver ---------------------------------------------------------

    def resolve(self, troupe_id: TroupeId) -> Optional[List[ProcessAddress]]:
        """Many-to-one gathers at this member use the member's own
        registry — the Ringmaster is its own binding agent."""
        if self.descriptor is not None and troupe_id == RINGMASTER_TROUPE_ID:
            return list(self.descriptor.processes)
        name = self.by_id.get(troupe_id)
        if name is None:
            return None
        _tid, members = self.by_name[name]
        return [m.process for m in members]

    def install_descriptor(self, descriptor: TroupeDescriptor) -> None:
        """Bootstrap: tell this member who its fellow Ringmasters are
        (the configuration-file mechanism of §6.3)."""
        self.descriptor = descriptor

    # -- ID allocation -----------------------------------------------------

    def _new_troupe_id(self) -> TroupeId:
        """Deterministic: members allocate identical ID sequences because
        they process identical mutation sequences."""
        self._next_id += 1
        return ALLOCATED_ID_BASE + self._next_id

    # -- observability -----------------------------------------------------

    def _emit_lookup(self, op: str, name: str, found: bool) -> None:
        sim = self.runtime.sim
        if sim.bus.active:
            process = self.runtime.process
            sim.bus.emit(obs_events.BindingLookup(
                t=sim.now, host=process.host, proc=process.name, op=op,
                name=name, found=found))

    def _emit_member(self, op: str, name: str, new_id: TroupeId,
                     members: int, old_id: TroupeId = 0) -> None:
        sim = self.runtime.sim
        if sim.bus.active:
            process = self.runtime.process
            sim.bus.emit(obs_events.MembershipChanged(
                t=sim.now, host=process.host, proc=process.name, op=op,
                name=name, new_id=new_id, members=members, old_id=old_id))

    # -- procedures ---------------------------------------------------------

    def _register_troupe(self, ctx: CallContext, args: bytes) -> bytes:
        name, offset = wire.decode_str(args, 0)
        members, _ = wire.decode_members(args, offset)
        if name in self.by_name:
            raise RemoteError(ALREADY_EXISTS_ERROR, name)
        troupe_id = self._new_troupe_id()
        self.by_name[name] = (troupe_id, list(members))
        self.by_id[troupe_id] = name
        self._emit_member("register", name, troupe_id, len(members))
        return wire.encode_u64(troupe_id)

    def _add_troupe_member(self, ctx: CallContext, args: bytes):
        name, offset = wire.decode_str(args, 0)
        member, _ = wire.decode_module_address(args, offset)
        if name not in self.by_name:
            # First export under this name creates the troupe (§6.3).
            troupe_id = self._new_troupe_id()
            self.by_name[name] = (troupe_id, [member])
            self.by_id[troupe_id] = name
            self._emit_member("add", name, troupe_id, 1)
            yield from self._set_troupe_id_at(name, troupe_id, [member],
                                              ctx)
            return wire.encode_u64(troupe_id)
        old_id, members = self.by_name[name]
        if member in members:
            raise RemoteError(ALREADY_EXISTS_ERROR,
                              "%s already in %s" % (member, name))
        new_members = members + [member]
        new_id = self._new_troupe_id()
        del self.by_id[old_id]
        self.by_name[name] = (new_id, new_members)
        self.by_id[new_id] = name
        self._emit_member("add", name, new_id, len(new_members),
                          old_id=old_id)
        # Figure 6.2: membership and troupe ID change together, and every
        # member (including the new one) learns the new ID.
        yield from self._set_troupe_id_at(name, new_id, new_members, ctx)
        return wire.encode_u64(new_id)

    def _remove_troupe_member(self, ctx: CallContext, args: bytes):
        name, offset = wire.decode_str(args, 0)
        member, _ = wire.decode_module_address(args, offset)
        if name not in self.by_name:
            raise RemoteError(NOT_FOUND_ERROR, name)
        old_id, members = self.by_name[name]
        if member not in members:
            raise RemoteError(NOT_FOUND_ERROR,
                              "%s not in %s" % (member, name))
        new_members = [m for m in members if m != member]
        if not new_members:
            # A troupe cannot scale to zero: its state would be lost with
            # the last replica (§6.4.1 — get_state needs a surviving
            # member).  Rejected before any mutation, so every Ringmaster
            # replica's registry stays untouched and identical.
            raise RemoteError(LAST_MEMBER_ERROR,
                              "%s is the last member of %s" % (member, name))
        new_id = self._new_troupe_id()
        del self.by_id[old_id]
        self._emit_member("remove", name, new_id, len(new_members),
                          old_id=old_id)
        self.by_name[name] = (new_id, new_members)
        self.by_id[new_id] = name
        yield from self._set_troupe_id_at(name, new_id, new_members, ctx)
        return wire.encode_u64(new_id)

    def _lookup_by_name(self, ctx: CallContext, args: bytes) -> bytes:
        name, _ = wire.decode_str(args, 0)
        if name not in self.by_name:
            self._emit_lookup("by_name", name, found=False)
            raise RemoteError(NOT_FOUND_ERROR, name)
        troupe_id, members = self.by_name[name]
        self._emit_lookup("by_name", name, found=True)
        return wire.encode_u64(troupe_id) + wire.encode_members(members)

    def _lookup_by_id(self, ctx: CallContext, args: bytes) -> bytes:
        troupe_id, _ = wire.decode_u64(args, 0)
        name = self.by_id.get(troupe_id)
        if name is None:
            self._emit_lookup("by_id", "troupe id %d" % troupe_id,
                              found=False)
            raise RemoteError(NOT_FOUND_ERROR, "troupe id %d" % troupe_id)
        _tid, members = self.by_name[name]
        self._emit_lookup("by_id", name, found=True)
        return wire.encode_members(members)

    def _rebind(self, ctx: CallContext, args: bytes) -> bytes:
        """§6.1: the old binding is a hint that may be stale; return the
        current binding (and do not blindly delete the old one)."""
        name, offset = wire.decode_str(args, 0)
        _old_id, _ = wire.decode_u64(args, offset)
        self._emit_lookup("rebind", name, found=name in self.by_name)
        return self._lookup_by_name(ctx, wire.encode_str(name))

    def _list_troupes(self, ctx: CallContext, args: bytes) -> bytes:
        self._emit_lookup("list", "", found=True)
        names = sorted(self.by_name)
        out = [struct.pack("!H", len(names))]
        for name in names:
            out.append(wire.encode_str(name))
        return b"".join(out)

    # -- the nested set_troupe_id call (Figure 6.2) -----------------------

    def _set_troupe_id_at(self, name: str, new_id: TroupeId,
                          members: List[ModuleAddress], ctx: CallContext):
        """Replicated call to the control interface of every member."""
        control = TroupeDescriptor(
            name, 0,  # dest troupe id 0: the member may not know any ID yet
            tuple(ModuleAddress(m.process, CONTROL_MODULE) for m in members))
        self._nested_calls += 1
        yield from self.runtime.call_troupe(
            control, CONTROL_MODULE, SET_TROUPE_ID_PROC,
            struct.pack("!Q", new_id), thread_id=ctx.thread_id,
            call_number=0x40000000 | self._nested_calls)


def start_ringmaster(machines: List[Machine], port: int = RINGMASTER_PORT,
                     config: Optional[RuntimeConfig] = None,
                     ) -> Tuple[TroupeDescriptor, List[RingmasterMember]]:
    """Start a Ringmaster member on each machine and wire them together.

    Returns the Ringmaster's troupe descriptor — the piece of well-known
    configuration every client starts from.
    """
    members = []
    for machine in machines:
        process = machine.spawn_process("ringmaster")
        members.append(RingmasterMember(process, port=port, config=config))
    descriptor = TroupeDescriptor(
        RINGMASTER_MODULE_NAME, RINGMASTER_TROUPE_ID,
        tuple(member.module_addr for member in members))
    for member in members:
        member.install_descriptor(descriptor)
    return descriptor, members
