"""The client side of binding: import/export, caching, and rebinding (§6.1).

A client contacts the binding agent only when it imports an interface and
caches the result for subsequent calls.  The §6.2 cache invalidation rule
makes stale caches safe: every call carries the destination troupe ID, and
members reject mismatches, so the client sees StaleBindingError and calls
``rebind`` — passing the old binding as a hint.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional

from repro.binding import wire
from repro.binding.agent import (
    ADD_TROUPE_MEMBER_PROC,
    LIST_TROUPES_PROC,
    LOOKUP_BY_ID_PROC,
    LAST_MEMBER_ERROR,
    LOOKUP_BY_NAME_PROC,
    NOT_FOUND_ERROR,
    REBIND_PROC,
    REGISTER_TROUPE_PROC,
    REMOVE_TROUPE_MEMBER_PROC,
    RINGMASTER_TROUPE_ID,
    BindingError,
)
from repro.core.collators import Collator
from repro.core.runtime import StaleBindingError, TroupeRuntime
from repro.core.troupe import TroupeDescriptor, TroupeId
from repro.net.addresses import ModuleAddress, ProcessAddress
from repro.rpc.messages import RemoteError


class BindingClient:
    """Import/export operations against the Ringmaster, with caching."""

    def __init__(self, runtime: TroupeRuntime,
                 ringmaster: TroupeDescriptor):
        self.runtime = runtime
        self.ringmaster = ringmaster
        self.cache: Dict[str, TroupeDescriptor] = {}
        self._members_by_id: Dict[TroupeId, List[ProcessAddress]] = {}
        self.rebinds = 0

    # -- imports -----------------------------------------------------------

    def import_troupe(self, name: str):
        """Generator: the descriptor for ``name``, from cache if possible."""
        if name in self.cache:
            return self.cache[name]
        return (yield from self._lookup(name))

    def rebind(self, name: str):
        """Generator: refresh a stale binding (§6.1), passing the old
        binding to the agent as a hint."""
        self.rebinds += 1
        old = self.cache.pop(name, None)
        old_id = old.troupe_id if old else 0
        raw = yield from self._ringmaster_call(
            REBIND_PROC, wire.encode_str(name) + wire.encode_u64(old_id))
        return self._cache_descriptor(name, raw)

    def _lookup(self, name: str):
        raw = yield from self._ringmaster_call(
            LOOKUP_BY_NAME_PROC, wire.encode_str(name))
        return self._cache_descriptor(name, raw)

    def lookup_by_id(self, troupe_id: TroupeId):
        """Generator: member process addresses for a troupe ID (used by
        servers handling many-to-one calls, §4.3.2)."""
        raw = yield from self._ringmaster_call(
            LOOKUP_BY_ID_PROC, wire.encode_u64(troupe_id))
        members, _ = wire.decode_members(raw, 0)
        processes = [m.process for m in members]
        self._members_by_id[troupe_id] = processes
        return processes

    def list_troupes(self):
        """Generator: all registered troupe names."""
        raw = yield from self._ringmaster_call(LIST_TROUPES_PROC, b"")
        (count,) = struct.unpack_from("!H", raw, 0)
        names = []
        offset = 2
        for _ in range(count):
            name, offset = wire.decode_str(raw, offset)
            names.append(name)
        return names

    # -- exports ------------------------------------------------------------

    def export_module(self, name: str, member: ModuleAddress):
        """Generator: add one member to the named troupe (creating it on
        first export), per §6.2's member-at-a-time registration.
        Returns the new troupe ID."""
        raw = yield from self._ringmaster_call(
            ADD_TROUPE_MEMBER_PROC,
            wire.encode_str(name) + wire.encode_module_address(member))
        troupe_id, _ = wire.decode_u64(raw, 0)
        self.cache.pop(name, None)  # our own view is now stale
        return troupe_id

    def register_troupe(self, name: str, members: List[ModuleAddress]):
        """Generator: third-party registration of a whole troupe (the
        configuration manager uses this, §7.5.3)."""
        raw = yield from self._ringmaster_call(
            REGISTER_TROUPE_PROC,
            wire.encode_str(name) + wire.encode_members(members))
        troupe_id, _ = wire.decode_u64(raw, 0)
        return troupe_id

    def remove_member(self, name: str, member: ModuleAddress):
        """Generator: delete a (crashed) member; returns the new troupe ID."""
        raw = yield from self._ringmaster_call(
            REMOVE_TROUPE_MEMBER_PROC,
            wire.encode_str(name) + wire.encode_module_address(member))
        troupe_id, _ = wire.decode_u64(raw, 0)
        self.cache.pop(name, None)
        return troupe_id

    # -- calling through the cache with automatic rebinding ---------------

    def call(self, name: str, procedure: int, args: bytes,
             collator: Optional[Collator] = None, max_rebinds: int = 3):
        """Generator: a replicated call to the named troupe, transparently
        rebinding when the cached binding turns out to be stale."""
        for attempt in range(max_rebinds + 1):
            descriptor = yield from self.import_troupe(name)
            try:
                return (yield from self.runtime.call_troupe(
                    descriptor, None, procedure, args, collator=collator))
            except StaleBindingError:
                if attempt == max_rebinds:
                    raise
                yield from self.rebind(name)

    # -- resolver for server runtimes ------------------------------------

    def make_resolver(self):
        """A resolver suitable for TroupeRuntime: synchronous cache lookup
        (a miss returns None and the runtime falls back gracefully)."""
        def resolver(troupe_id: TroupeId) -> Optional[List[ProcessAddress]]:
            if troupe_id == RINGMASTER_TROUPE_ID:
                return list(self.ringmaster.processes)
            if troupe_id in self._members_by_id:
                return self._members_by_id[troupe_id]
            for descriptor in self.cache.values():
                if descriptor.troupe_id == troupe_id:
                    return list(descriptor.processes)
            return None
        return resolver

    # -- internals ----------------------------------------------------------

    def _ringmaster_call(self, procedure: int, args: bytes):
        try:
            return (yield from self.runtime.call_troupe(
                self.ringmaster, None, procedure, args))
        except RemoteError as exc:
            if exc.kind == NOT_FOUND_ERROR:
                raise BindingError("not found: %s" % exc.detail) from exc
            if exc.kind == "AlreadyExists":
                raise BindingError("already exists: %s" % exc.detail) from exc
            if exc.kind == LAST_MEMBER_ERROR:
                raise BindingError("last member: %s" % exc.detail) from exc
            raise

    def _cache_descriptor(self, name: str, raw: bytes) -> TroupeDescriptor:
        troupe_id, offset = wire.decode_u64(raw, 0)
        members, _ = wire.decode_members(raw, offset)
        descriptor = TroupeDescriptor(name, troupe_id, tuple(members))
        self.cache[name] = descriptor
        self._members_by_id[troupe_id] = [m.process for m in members]
        return descriptor
