"""Wire encoding for binding-agent arguments and results.

A small hand-rolled codec: length-prefixed UTF-8 strings, 64-bit unsigned
integers, and module/process addresses.  (The real Circus generated these
from the Ringmaster's Courier interface with its stub compiler; the stub
compiler in :mod:`repro.stubs` post-dates this module and the binding
layer keeps its own minimal codec to stay dependency-free.)
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.net.addresses import ModuleAddress, ProcessAddress

_U16 = struct.Struct("!H")
_U64 = struct.Struct("!Q")


class WireError(Exception):
    """Malformed binding message."""


def encode_str(value: str) -> bytes:
    raw = value.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise WireError("string too long")
    return _U16.pack(len(raw)) + raw


def decode_str(data: bytes, offset: int) -> Tuple[str, int]:
    (length,) = _U16.unpack_from(data, offset)
    offset += 2
    return data[offset:offset + length].decode("utf-8"), offset + length


def encode_u64(value: int) -> bytes:
    return _U64.pack(value)


def decode_u64(data: bytes, offset: int) -> Tuple[int, int]:
    (value,) = _U64.unpack_from(data, offset)
    return value, offset + 8


def encode_module_address(addr: ModuleAddress) -> bytes:
    return (encode_str(addr.process.host)
            + _U16.pack(addr.process.port)
            + _U16.pack(addr.module))


def decode_module_address(data: bytes, offset: int) -> Tuple[ModuleAddress, int]:
    host, offset = decode_str(data, offset)
    (port,) = _U16.unpack_from(data, offset)
    offset += 2
    (module,) = _U16.unpack_from(data, offset)
    offset += 2
    return ModuleAddress(ProcessAddress(host, port), module), offset


def encode_members(members: List[ModuleAddress]) -> bytes:
    out = [_U16.pack(len(members))]
    for member in members:
        out.append(encode_module_address(member))
    return b"".join(out)


def decode_members(data: bytes, offset: int) -> Tuple[List[ModuleAddress], int]:
    (count,) = _U16.unpack_from(data, offset)
    offset += 2
    members = []
    for _ in range(count):
        member, offset = decode_module_address(data, offset)
        members.append(member)
    return members, offset
