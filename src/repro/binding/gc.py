"""Garbage collection of stale bindings (§6.1).

"Another solution is to use a garbage collector: a process which
periodically enumerates all the registered modules, probes them with a
special null procedure call (an 'are you there?' request), and explicitly
deletes the bindings for modules that do not respond."

The janitor is deliberately a *client* of the Ringmaster rather than part
of it: deletions reach the registry as replicated calls, so every
Ringmaster member's registry stays consistent even though probing itself
is nondeterministic.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.binding.client import BindingClient
from repro.core.runtime import TroupeRuntime
from repro.net.addresses import ModuleAddress
from repro.sim.kernel import Sleep


class Janitor:
    """Periodically prunes troupe members that no longer answer probes."""

    def __init__(self, runtime: TroupeRuntime, binding: BindingClient,
                 interval: float = 5000.0, probe_timeout: float = 400.0):
        self.runtime = runtime
        self.binding = binding
        self.interval = interval
        self.probe_timeout = probe_timeout
        self.removed: List[Tuple[str, ModuleAddress]] = []
        self._proc = None

    def start(self) -> None:
        if self._proc is None:
            self._proc = self.runtime.process.spawn(
                self._loop(), name="janitor", daemon=True)

    def stop(self) -> None:
        if self._proc is not None:
            self._proc.kill()
            self._proc = None

    def sweep(self):
        """Generator: one full enumerate-probe-delete pass.  Returns the
        list of members removed in this pass."""
        removed_now = []
        names = yield from self.binding.list_troupes()
        for name in names:
            try:
                descriptor = yield from self.binding.rebind(name)
            except Exception:
                continue  # deleted concurrently
            for member in descriptor.members:
                alive = yield from self.runtime.endpoint.ping(
                    member.process, timeout=self.probe_timeout)
                if not alive:
                    try:
                        yield from self.binding.remove_member(name, member)
                    except Exception:
                        continue  # already removed by someone else
                    self.removed.append((name, member))
                    removed_now.append((name, member))
        return removed_now

    def _loop(self):
        while True:
            yield Sleep(self.interval)
            yield from self.sweep()
