"""Binding and reconfiguration (Chapter 6).

A binding agent enables programs to import and export troupes by name.
This package implements the *Ringmaster*, the Circus binding agent: a
specialized name server that

- manipulates troupes (sets of module addresses),
- is a dedicated binding agent, and
- is itself a troupe whose procedures are invoked via replicated
  procedure calls (§6.3).

Troupe IDs double as incarnation numbers (§6.2): ``add_troupe_member``
atomically changes both the membership and the troupe ID, running the
generated ``set_troupe_id`` procedure at every existing member, so stale
client caches are always detected.

The package also provides the client-side cache with rebinding (§6.1),
the garbage-collecting janitor, and the §6.4.1 recipe for bringing a new
member into an existing troupe via ``get_state``.
"""

from repro.binding.agent import (
    BindingError,
    RINGMASTER_MODULE_NAME,
    RINGMASTER_PORT,
    RingmasterMember,
    start_ringmaster,
)
from repro.binding.client import BindingClient
from repro.binding.discovery import DiscoveryFailed, discover_ringmaster
from repro.binding.gc import Janitor
from repro.binding.reconfig import GET_STATE_PROC, ReplaceableModule, join_troupe

__all__ = [
    "BindingClient",
    "BindingError",
    "DiscoveryFailed",
    "GET_STATE_PROC",
    "Janitor",
    "RINGMASTER_MODULE_NAME",
    "RINGMASTER_PORT",
    "ReplaceableModule",
    "RingmasterMember",
    "discover_ringmaster",
    "join_troupe",
    "start_ringmaster",
]
