"""Broadcast discovery of the Ringmaster (§6.3).

"Currently, a configuration file is used for this purpose; a better
solution would be a broadcast protocol."  This module is that better
solution: a client broadcasts an "are you there?" probe to the
Ringmaster's well-known port on every machine; the processes that answer
within the window are the Ringmaster troupe members.

Because probe replies are part of the paired message protocol, any
Ringmaster member answers without code changes.
"""

from __future__ import annotations

from repro.binding.agent import RINGMASTER_PORT, RINGMASTER_TROUPE_ID
from repro.core.troupe import TroupeDescriptor
from repro.host.process import OsProcess
from repro.net.addresses import ModuleAddress
from repro.pairedmsg import segments as seg
from repro.sim.kernel import AnyOf, Sleep


class DiscoveryFailed(Exception):
    """No Ringmaster member answered the broadcast probe."""


def discover_ringmaster(process: OsProcess, port: int = RINGMASTER_PORT,
                        window: float = 100.0,
                        retries: int = 3) -> TroupeDescriptor:
    """Generator: locate the Ringmaster troupe by broadcast.

    Broadcasts a probe, collects probe replies for ``window`` ms, and
    builds the troupe descriptor from the responders (sorted, so every
    discoverer computes the same member order).
    """
    sock = process.udp_socket()
    probe = seg.make_probe(0).encode()
    try:
        for _attempt in range(retries):
            yield from process.syscall("sendmsg")
            sock.broadcast(probe, port)
            responders = set()
            deadline = process.sim.now + window
            while process.sim.now < deadline:
                remaining = deadline - process.sim.now
                index, value = yield AnyOf(sock.recv(), Sleep(remaining))
                if index == 1:
                    break
                yield from process.syscall("recvmsg")
                try:
                    segment = seg.decode(value.payload)
                except seg.SegmentFormatError:
                    continue
                if segment.msg_type == seg.MSG_PROBE_REPLY:
                    responders.add(value.src)
            if responders:
                members = tuple(ModuleAddress(addr, 0)
                                for addr in sorted(responders))
                return TroupeDescriptor("ringmaster", RINGMASTER_TROUPE_ID,
                                        members)
        raise DiscoveryFailed(
            "no Ringmaster replies on port %d after %d broadcasts"
            % (port, retries))
    finally:
        sock.close()
