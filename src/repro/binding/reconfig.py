"""Reconfiguration: replacing crashed troupe members (§6.4.1).

Adding a new member to an existing troupe takes two steps:

1. bring the new member into a state consistent with the others — a
   replicated call to the ``get_state`` procedure of the existing members
   (checkpoint-style state transfer; the replicated call doubles as a
   consistency check, since the unanimous collator verifies that all
   existing members externalize the same state);
2. register the new member with the binding agent
   (``add_troupe_member``), which atomically issues the new troupe ID.

The paper brackets the two in one atomic transaction; this implementation
performs them back-to-back and documents that reconfiguration should be
quiescent with respect to state-changing calls (DESIGN.md lists the
simplification).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.binding.client import BindingClient
from repro.core.runtime import CallContext, ExportedModule, TroupeRuntime
from repro.net.addresses import ModuleAddress
from repro.obs import events as obs_events

#: Reserved procedure number for the automatically generated get_state.
GET_STATE_PROC = 0xFFF0


class ReplaceableModule(ExportedModule):
    """An ExportedModule with the generated ``get_state`` procedure.

    ``externalize`` returns the member's state as bytes; ``internalize``
    installs state received from an existing member.  The paper produces
    both from the stub compiler; here they are supplied by the module
    author (or by the stub layer's record marshaling).
    """

    def __init__(self, name: str, procedures: Optional[Dict[int, Callable]],
                 externalize: Callable[[], bytes],
                 internalize: Callable[[bytes], None]):
        super().__init__(name, procedures)
        self.externalize = externalize
        self.internalize = internalize
        self.define(GET_STATE_PROC, self._get_state)

    def _get_state(self, ctx: CallContext, args: bytes) -> bytes:
        # Read-only by construction: externalize must not mutate.
        state = self.externalize()
        sim = ctx.runtime.sim
        if sim.bus.active:
            sim.bus.emit(obs_events.StateTransferred(
                t=sim.now, module=self.name, size=len(state)))
        return state


def join_troupe(runtime: TroupeRuntime, module: ReplaceableModule,
                member_addr: ModuleAddress, name: str,
                binding: BindingClient):
    """Generator: make ``runtime``/``module`` a new member of ``name``.

    Fetches state from the existing members (replicated get_state with the
    unanimous collator — troupe consistency is verified for free), installs
    it, then registers with the binding agent, which reissues the troupe ID
    everywhere.  Returns the new troupe ID.
    """
    descriptor = yield from binding.import_troupe(name)
    state = yield from runtime.call_troupe(
        descriptor, None, GET_STATE_PROC, b"")
    module.internalize(state)
    new_id = yield from binding.export_module(name, member_addr)
    return new_id
