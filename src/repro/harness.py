"""Convenience harness for assembling simulated replicated programs.

Building a replicated distributed program by hand takes a simulator, a
network, machines, processes, runtimes, troupe descriptors, and a resolver.
This module packages those steps so examples, tests, and benchmarks can
say what they mean:

    world = World(machines=6, seed=42)
    echo = world.make_module("echo", {0: echo_handler})
    troupe, runtimes = world.make_troupe("echo-svc", echo, degree=3)
    client = world.make_client("client-host")
    reply = world.run(client.call_troupe(troupe, 0, 0, b"hi"))

The World keeps a static troupe registry (the resolver a real deployment
would get from the Ringmaster binding agent in :mod:`repro.binding`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.runtime import ExportedModule, RuntimeConfig, TroupeRuntime
from repro.core.troupe import TroupeDescriptor, TroupeId, new_troupe_id
from repro.host.machine import Machine
from repro.host.syscalls import SyscallCostModel
from repro.net.addresses import ProcessAddress
from repro.net.network import Network, NetworkConfig
from repro.rpc.threads import ThreadId
from repro.sim.kernel import Simulator


class World:
    """A simulator, a network, and a set of machines, wired together."""

    def __init__(self, machines: int = 6, seed: int = 0,
                 net_config: Optional[NetworkConfig] = None,
                 runtime_config: Optional[RuntimeConfig] = None,
                 cost_model: Optional[SyscallCostModel] = None,
                 machine_names: Optional[List[str]] = None,
                 monitors=None,
                 troupe_id_base: Optional[int] = None):
        self.sim = Simulator(monitors=monitors)
        self.runtime_config = runtime_config or RuntimeConfig()
        if machine_names is None:
            machine_names = ["host%d" % i for i in range(machines)]
        self.net = self._make_network(seed, net_config, machine_names)
        self.machines: List[Machine] = [
            Machine(self.sim, self.net, name, cost_model=cost_model)
            for name in machine_names]
        self._machine_by_name = {m.name: m for m in self.machines}
        #: troupe_id -> list of member process addresses (the resolver's map)
        self.registry: Dict[TroupeId, List[ProcessAddress]] = {}
        #: every runtime this world created, so benchmarks can aggregate
        #: per-endpoint counters (see :meth:`endpoint_stats`).
        self.runtimes: List[TroupeRuntime] = []
        self._next_host = 0
        #: workload scratch space: generators accumulate completion counts
        #: here so drivers (e.g. :func:`repro.sim.sharded.run_sharded`)
        #: can sum them without threading result objects through builders.
        self.counters: Dict[str, float] = {}
        #: like :attr:`counters`, but for per-observation samples
        #: (latencies); values are plain lists of floats.
        self.samples: Dict[str, List[float]] = {}
        # Troupe IDs normally come from the process-global allocator
        # (permanently unique).  A sharded run builds N replicas of the
        # same world in one process and needs their troupe IDs to match
        # replica-for-replica, so it pins a per-world base instead.
        self._troupe_ids = (iter(range(troupe_id_base, 1 << 62))
                            if troupe_id_base is not None else None)

    def _make_network(self, seed: int, net_config: Optional[NetworkConfig],
                      machine_names: List[str]) -> Network:
        """Build this world's wire; sharded worlds override this to route
        cross-shard traffic through an outbox (:mod:`repro.sim.sharded`)."""
        return Network(self.sim, seed=seed, config=net_config)

    def _new_troupe_id(self) -> TroupeId:
        if self._troupe_ids is not None:
            return next(self._troupe_ids)
        return new_troupe_id()

    def owns(self, host: str) -> bool:
        """Whether this world simulates ``host`` itself (always true for a
        plain single-process world; sharded worlds own a subset)."""
        return True

    def spawn_on(self, machine_name: str, gen, name: Optional[str] = None):
        """Spawn ``gen`` only when this world owns ``machine_name``.

        Workload builders use this so the same builder code runs in every
        shard of a sharded world: each session starts exactly once, on the
        shard that owns its home machine.  Returns the process, or None
        when the host belongs to another shard (the generator is closed)."""
        if not self.owns(machine_name):
            gen.close()
            return None
        return self.spawn(gen, name=name)

    # -- machines -----------------------------------------------------------

    def machine(self, name: str) -> Machine:
        return self._machine_by_name[name]

    def _pick_machines(self, count: int,
                       names: Optional[List[str]] = None) -> List[Machine]:
        if names is not None:
            return [self._machine_by_name[name] for name in names]
        if count > len(self.machines):
            raise ValueError("world has only %d machines, %d requested"
                             % (len(self.machines), count))
        picked = []
        for _ in range(count):
            picked.append(self.machines[self._next_host % len(self.machines)])
            self._next_host += 1
        return picked

    # -- resolver -------------------------------------------------------

    def resolver(self, troupe_id: TroupeId) -> Optional[List[ProcessAddress]]:
        """The client-troupe-membership lookup servers use for many-to-one
        calls (§4.3.2)."""
        return self.registry.get(troupe_id)

    def register(self, descriptor: TroupeDescriptor) -> None:
        self.registry[descriptor.troupe_id] = list(descriptor.processes)

    # -- modules and troupes ------------------------------------------------

    @staticmethod
    def make_module(name: str,
                    procedures: Dict[int, Callable]) -> ExportedModule:
        return ExportedModule(name, procedures)

    def make_troupe(self, name: str,
                    module_factory,
                    degree: int = 3,
                    on_machines: Optional[List[str]] = None,
                    port: Optional[int] = None,
                    runtime_config: Optional[RuntimeConfig] = None,
                    ) -> Tuple[TroupeDescriptor, List[TroupeRuntime]]:
        """Instantiate a troupe of ``degree`` members.

        ``module_factory`` is either an :class:`ExportedModule` (shared
        state is then shared between members — fine for stateless modules)
        or a zero-argument callable returning a fresh ExportedModule per
        member (required for stateful modules: members must not literally
        share memory, they are replicas on different machines).
        """
        machines = self._pick_machines(degree, on_machines)
        troupe_id = self._new_troupe_id()
        runtimes = []
        members = []
        for machine in machines:
            process = machine.spawn_process(name)
            runtime = TroupeRuntime(
                process, port=port,
                config=runtime_config or self.runtime_config,
                resolver=self.resolver, troupe_id=troupe_id)
            if callable(module_factory) and not isinstance(
                    module_factory, ExportedModule):
                module = module_factory()
            else:
                module = module_factory
            member_addr = runtime.export(module)
            runtime.start_server()
            runtimes.append(runtime)
            self.runtimes.append(runtime)
            members.append(member_addr)
        descriptor = TroupeDescriptor(name, troupe_id, tuple(members))
        self.register(descriptor)
        return descriptor, runtimes

    def make_client(self, machine_name: Optional[str] = None,
                    troupe_id: TroupeId = 0,
                    thread_id: Optional[ThreadId] = None,
                    runtime_config: Optional[RuntimeConfig] = None,
                    ) -> TroupeRuntime:
        """An unreplicated client runtime on the named (or next) machine."""
        if machine_name is None:
            machine = self._pick_machines(1)[0]
        else:
            machine = self._machine_by_name[machine_name]
        process = machine.spawn_process("client")
        runtime = TroupeRuntime(process,
                                config=runtime_config or self.runtime_config,
                                resolver=self.resolver, troupe_id=troupe_id,
                                thread_id=thread_id)
        self.runtimes.append(runtime)
        return runtime

    def make_client_troupe(self, name: str, degree: int,
                           on_machines: Optional[List[str]] = None,
                           thread_id: Optional[ThreadId] = None,
                           runtime_config: Optional[RuntimeConfig] = None,
                           ) -> Tuple[TroupeDescriptor, List[TroupeRuntime]]:
        """A client troupe: replicated callers sharing one logical thread
        ID (§4.3.2) and a registered troupe ID so servers can gather their
        many-to-one calls."""
        machines = self._pick_machines(degree, on_machines)
        troupe_id = self._new_troupe_id()
        if thread_id is None:
            thread_id = ThreadId("logical-%s" % name, troupe_id)
        runtimes = []
        members = []
        for machine in machines:
            process = machine.spawn_process(name)
            runtime = TroupeRuntime(
                process, config=runtime_config or self.runtime_config,
                resolver=self.resolver, troupe_id=troupe_id,
                thread_id=thread_id)
            runtimes.append(runtime)
            self.runtimes.append(runtime)
            members.append(runtime.addr)
        self.registry[troupe_id] = members
        from repro.net.addresses import ModuleAddress
        descriptor = TroupeDescriptor(
            name, troupe_id, tuple(ModuleAddress(a, 0) for a in members))
        return descriptor, runtimes

    def endpoint_stats(self) -> Dict[str, float]:
        """Sum the paired-endpoint stats/counters across every runtime
        this world created (the message-path proxy metrics)."""
        totals: Dict[str, float] = {}
        for runtime in self.runtimes:
            for key, value in runtime.endpoint.stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    # -- running --------------------------------------------------------

    def run(self, gen, name: Optional[str] = None,
            until: Optional[float] = None):
        """Run a client generator to completion and return its result."""
        return self.sim.run_process(gen, name=name, until=until)

    def spawn(self, gen, name: Optional[str] = None):
        return self.sim.spawn(gen, name=name)

    # -- fault schedules ------------------------------------------------

    def install_schedule(self, schedule):
        """Wire a :class:`repro.explore.schedule.FaultSchedule` into this
        world; returns the (not yet started)
        :class:`repro.explore.driver.ScheduleDriver`::

            driver = world.install_schedule(schedule)
            driver.start()
            world.run(body())
            driver.stop()
        """
        from repro.explore.driver import ScheduleDriver
        return ScheduleDriver(self.sim, self.machines, self.net, schedule)

    # -- monitoring -----------------------------------------------------

    def watch(self, monitors=None, capacity: int = 2048,
              trace: bool = False):
        """Invariant-monitor this world for a ``with`` block — see
        :func:`repro.obs.monitor.watch`::

            with world.watch() as probe:
                world.run(body())
            assert not probe.violations
        """
        from repro.obs.monitor import watch
        return watch(self.sim, monitors=monitors, capacity=capacity,
                     trace=trace)

    def observe(self, bucket_ms: float = 10.0):
        """Full telemetry for a ``with`` block: metrics, windowed
        time-series, and critical-path attribution, in one attach::

            with world.observe() as obs:
                world.run(body())
            obs.critpath.report()["attributed_pct"]
            obs.timeseries.counter("rpc.calls_completed", ...).points()
        """
        return _Observation(self, bucket_ms)


class _Observation:
    """What :meth:`World.observe` yields: the three telemetry observers
    over one world's bus, attached together and detached together."""

    def __init__(self, world: World, bucket_ms: float):
        self._world = world
        self._bucket_ms = bucket_ms
        self.metrics = None        # MetricsRegistry after __enter__
        self.timeseries = None     # TimeSeriesRegistry after __enter__
        self.critpath = None       # CritPathAnalyzer after __enter__
        self._collectors = []

    def __enter__(self) -> "_Observation":
        from repro.obs import (CritPathAnalyzer, MetricsCollector,
                               TimeSeriesCollector)
        bus = self._world.sim.bus
        metrics = MetricsCollector(bus)
        timeseries = TimeSeriesCollector(bus, bucket_ms=self._bucket_ms)
        self.critpath = CritPathAnalyzer(self._world.sim)
        self.metrics = metrics.registry
        self.timeseries = timeseries.registry
        self._collectors = [metrics, timeseries, self.critpath]
        return self

    def __exit__(self, *exc_info) -> None:
        for collector in reversed(self._collectors):
            collector.close()
        self._collectors = []
