"""Developer tools: protocol tracing and message sequence charts."""

from repro.tools.msc import PacketTrace, render_msc, trace_network

__all__ = ["PacketTrace", "render_msc", "trace_network"]
