"""Packet tracing and ASCII message sequence charts.

Attach a :class:`PacketTrace` to a network and every transmitted datagram
is recorded with its decoded paired-message summary (when it parses as
one).  :func:`render_msc` draws the recording as a message sequence chart
with one lane per host — the pictures in the paper's Figures 4.3/4.4,
generated from a live run.

The trace is an ordinary subscriber of the observability event bus
(:mod:`repro.obs`): it listens for ``net.send`` events, which are emitted
once per destination at the moment a datagram is handed to the wire —
before any loss or crash decision, so dropped packets appear in the chart
exactly as they would on a promiscuous Ethernet tap.

    with trace_network(world.net) as trace:
        world.run(body())
    print(render_msc(trace, hosts=["client", "s1", "s2"]))
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from typing import List, Optional, Sequence

from repro.net.network import Network
from repro.obs import events as obs_events
from repro.pairedmsg import segments as seg


@dataclasses.dataclass
class TracedPacket:
    time: float
    src_host: str
    dst_host: str
    summary: str


class PacketTrace:
    """A recording of every datagram handed to the wire.

    Construct with a network to subscribe to its simulator's bus, or with
    no arguments and feed :meth:`record` yourself.  Call :meth:`close`
    (or use :func:`trace_network`) to detach.
    """

    def __init__(self, network: Optional[Network] = None):
        self.packets: List[TracedPacket] = []
        self._bus = None
        self._sub = None
        if network is not None:
            self._bus = network.sim.bus
            self._sub = self._bus.subscribe(self._on_send,
                                            kinds=(obs_events.PacketSent.kind,))

    def _on_send(self, event: obs_events.PacketSent) -> None:
        self.packets.append(TracedPacket(
            event.t, event.src.host, event.dst.host,
            _summarize(event.payload)))

    def record(self, time: float, datagram) -> None:
        self.packets.append(TracedPacket(
            time, datagram.src.host, datagram.dst.host,
            _summarize(datagram.payload)))

    def close(self) -> None:
        if self._bus is not None and self._sub is not None:
            self._bus.unsubscribe(self._sub)
            self._sub = None

    def between(self, start: float, end: float) -> List[TracedPacket]:
        return [p for p in self.packets if start <= p.time <= end]

    def __len__(self) -> int:
        return len(self.packets)


def _summarize(payload: bytes) -> str:
    try:
        segment = seg.decode(payload)
    except seg.SegmentFormatError:
        return "%dB" % len(payload)
    kind = {seg.MSG_CALL: "CALL", seg.MSG_RETURN: "RET",
            seg.MSG_PROBE: "PROBE", seg.MSG_PROBE_REPLY: "PROBE-R"}[
        segment.msg_type]
    if segment.ack:
        return "%s-ACK#%d<=%d" % (kind, segment.call_number,
                                  segment.segment_number)
    flags = "!" if segment.please_ack else ""
    if segment.total_segments > 1:
        return "%s#%d %d/%d%s" % (kind, segment.call_number,
                                  segment.segment_number,
                                  segment.total_segments, flags)
    return "%s#%d%s" % (kind, segment.call_number, flags)


@contextmanager
def trace_network(network: Network):
    """Context manager: record all transmissions while the body runs."""
    trace = PacketTrace(network)
    try:
        yield trace
    finally:
        trace.close()


def render_msc(trace: PacketTrace,
               hosts: Optional[Sequence[str]] = None,
               lane_width: int = 16,
               max_packets: int = 80) -> str:
    """Draw the trace as an ASCII message sequence chart.

    One column per host; each packet is a labelled arrow from its source
    lane toward its destination lane at the (virtual) time it was sent.
    """
    packets = trace.packets[:max_packets]
    if hosts is None:
        seen = []
        for packet in packets:
            for host in (packet.src_host, packet.dst_host):
                if host not in seen:
                    seen.append(host)
        hosts = seen
    lanes = {host: index for index, host in enumerate(hosts)}
    width = lane_width * len(hosts)

    def lane_center(host: str) -> int:
        return lanes[host] * lane_width + lane_width // 2

    lines = []
    header = ""
    for host in hosts:
        header += host[:lane_width - 2].center(lane_width)
    lines.append("time(ms) " + header)
    ruler = ""
    for host in hosts:
        ruler += "|".center(lane_width)
    for packet in packets:
        if packet.src_host not in lanes or packet.dst_host not in lanes:
            continue
        a = lane_center(packet.src_host)
        b = lane_center(packet.dst_host)
        row = [c for c in ruler]
        left, right = min(a, b), max(a, b)
        for i in range(left + 1, right):
            row[i] = "-"
        row[b] = ">" if b > a else "<"
        row[a] = "+"
        label = packet.summary
        text = "".join(row)
        # Put the label in the middle of the arrow when it fits.
        mid = (left + right) // 2 - len(label) // 2
        if right - left > len(label) + 3 and mid > 0:
            text = text[:mid] + label + text[mid + len(label):]
            lines.append("%8.1f %s" % (packet.time, text))
        else:
            lines.append("%8.1f %s  %s" % (packet.time, text, label))
    if len(trace.packets) > max_packets:
        lines.append("... (%d more packets)" %
                     (len(trace.packets) - max_packets))
    return "\n".join(lines)
