"""Exponential crash/repair driving for the §6.4.2 availability analysis.

Each machine's lifetime (time to failure) is exponential with mean 1/λ and
its repair time exponential with mean 1/μ; machines fail and are repaired
independently.  This is exactly the birth-death model of Figure 6.3, so
the measured equilibrium availability can be compared against

    A = 1 − (λ / (λ + μ))^n          (Equation 6.1)

The bookkeeping (down counts, failure/repair totals, the all-down
unavailability integral) lives in :meth:`FailureModel._crash_machine` and
:meth:`FailureModel._repair_machine` so that other fault drivers — notably
the deterministic :class:`repro.explore.driver.ScheduleDriver` — can
subclass :class:`FailureModel`, replace the exponential draw with their
own timing, and keep the same statistics.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.host.machine import Machine
from repro.sim.kernel import Simulator, Sleep
from repro.sim.rng import RandomStream


class FailureModel:
    """Drives crash/repair cycles on a set of machines.

    Also accumulates the statistic the analysis needs: the total time
    during which *all* machines were down (the troupe was unavailable).

    ``start`` and ``stop`` are idempotent: a second ``start`` while
    running is a no-op (it must not double-drive the machines), ``stop``
    kills and forgets the driver processes, and a fresh ``start`` after
    ``stop`` begins a new driving epoch.
    """

    def __init__(self, sim: Simulator, machines: List[Machine],
                 failure_rate: float, repair_rate: float,
                 seed: int = 0,
                 on_repair: Optional[Callable[[Machine], None]] = None):
        if failure_rate <= 0 or repair_rate <= 0:
            raise ValueError("failure and repair rates must be positive")
        self.sim = sim
        self.machines = machines
        self.failure_rate = failure_rate
        self.repair_rate = repair_rate
        self.on_repair = on_repair
        self._rng = RandomStream(seed, "failures")
        self.down_count = 0
        self.total_failures = 0
        self.total_repairs = 0
        self._all_down_since: Optional[float] = None
        self.total_unavailable_time = 0.0
        self._started_at: Optional[float] = None
        self._processes = []
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        """Begin driving failures; call before sim.run().  No-op while
        already running."""
        if self._running:
            return
        self._running = True
        self._started_at = self.sim.now
        self._spawn_drivers()

    def _spawn_drivers(self) -> None:
        for machine in self.machines:
            rng = self._rng.fork(machine.name)
            proc = self.sim.spawn(self._drive(machine, rng),
                                  name="failures:%s" % machine.name,
                                  daemon=True)
            self._processes.append(proc)

    def stop(self) -> None:
        """Stop driving and forget the driver processes (idempotent)."""
        self._close_unavailable_interval()
        for proc in self._processes:
            proc.kill()
        self._processes = []
        self._running = False

    # -- shared crash/repair bookkeeping -----------------------------------

    def _crash_machine(self, machine: Machine) -> None:
        """Crash ``machine`` (if up) and account for it."""
        if not machine.up:
            return
        machine.crash()
        self.total_failures += 1
        self.down_count += 1
        if self.down_count == len(self.machines):
            self._all_down_since = self.sim.now

    def _repair_machine(self, machine: Machine) -> None:
        """Restart ``machine`` (if down) and account for it."""
        if machine.up:
            return
        if self.down_count == len(self.machines):
            self._close_unavailable_interval()
        machine.restart()
        self.total_repairs += 1
        self.down_count -= 1
        if self.on_repair is not None:
            self.on_repair(machine)

    def _drive(self, machine: Machine, rng: RandomStream):
        while True:
            yield Sleep(rng.expovariate(self.failure_rate))
            self._crash_machine(machine)
            yield Sleep(rng.expovariate(self.repair_rate))
            self._repair_machine(machine)

    def _close_unavailable_interval(self) -> None:
        if self._all_down_since is not None:
            self.total_unavailable_time += self.sim.now - self._all_down_since
            self._all_down_since = None

    def measured_availability(self) -> float:
        """Fraction of elapsed time during which at least one machine
        was up, since :meth:`start`."""
        if self._started_at is None:
            raise RuntimeError("failure model never started")
        elapsed = self.sim.now - self._started_at
        if elapsed <= 0:
            return 1.0
        unavailable = self.total_unavailable_time
        if self._all_down_since is not None:
            unavailable += self.sim.now - self._all_down_since
        return 1.0 - unavailable / elapsed
