"""The system-call cost model, calibrated to Table 4.2 of the paper.

The paper's execution profile (§4.4.1) found that six Berkeley 4.2BSD
system calls account for more than half the CPU time of a Circus replicated
procedure call.  Table 4.2 gives their per-call CPU cost on a VAX-11/750:

    sendmsg        8.1 ms   send datagram
    recvmsg        2.8 ms   receive datagram
    select         1.8 ms   inquire if datagram has arrived
    setitimer      1.2 ms   start interval timer for clock interrupt
    gettimeofday   0.7 ms   get time of day
    sigblock       0.4 ms   mask software interrupts (critical regions)

Charging these costs (as kernel CPU, advancing the simulated clock) is the
substitution that lets the simulation reproduce the *shape* of Tables 4.1
and 4.3 and Figure 4.8.  The read/write costs for the TCP baseline are
calibrated so one read+write exchange costs the 7.8 ms of kernel time that
Table 4.1 reports for the TCP echo test — the paper explains that the
"streamlined" read/write interface avoids the scatter/gather copying that
makes sendmsg so expensive.
"""

from __future__ import annotations

from typing import Dict, Mapping

#: Per-call CPU cost in milliseconds, straight from Table 4.2, plus the
#: calibrated costs for the syscalls the paper uses but does not tabulate.
TABLE_4_2_COSTS: Dict[str, float] = {
    # Measured in the paper (Table 4.2).
    "sendmsg": 8.1,
    "recvmsg": 2.8,
    "select": 1.8,
    "setitimer": 1.2,
    "gettimeofday": 0.7,
    "sigblock": 0.4,
    # Companions calibrated from Table 4.1 and the surrounding discussion.
    "sigsetmask": 0.4,    # the matching "end critical region" call
    "read": 3.8,          # TCP stream read  (read+write = 7.8 ms kernel/call)
    "write": 4.0,         # TCP stream write
    "getrusage": 0.7,     # same order as gettimeofday
    "socket": 1.0,
    "bind": 1.0,
    "connect": 2.0,
    "accept": 2.0,
}


class SyscallCostModel:
    """Maps syscall names to kernel-CPU milliseconds.

    Unknown syscalls are an error: the experiments depend on every charged
    operation being a deliberately calibrated one.
    """

    def __init__(self, costs: Mapping[str, float] = TABLE_4_2_COSTS,
                 scale: float = 1.0):
        if scale <= 0:
            raise ValueError("scale must be positive: %r" % scale)
        self.costs = {name: cost * scale for name, cost in costs.items()}
        self.scale = scale

    def cost(self, name: str) -> float:
        try:
            return self.costs[name]
        except KeyError:
            raise KeyError("no calibrated cost for syscall %r" % name) from None

    def with_scale(self, scale: float) -> "SyscallCostModel":
        """A copy with all costs scaled (e.g. to model a faster machine)."""
        return SyscallCostModel(self.costs, scale)

    def __contains__(self, name: str) -> bool:
        return name in self.costs
