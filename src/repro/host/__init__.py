"""Simulated machines and operating-system processes.

The paper's measurements ran on VAX-11/750s under Berkeley 4.2BSD; the cost
of a replicated call was dominated by six system calls (Table 4.2).  This
package substitutes a simulated host for that hardware:

- :mod:`repro.host.syscalls` — the calibrated system-call cost model
- :mod:`repro.host.machine` — fail-stop machines with attribute lists
  (§7.5.2) and crash/restart
- :mod:`repro.host.process` — OS processes with user/kernel CPU accounting
  (the ``getrusage`` analogue used in §4.4.1) and syscall wrappers around
  the network sockets
- :mod:`repro.host.failures` — exponential lifetime/repair driving the
  birth-death availability model of §6.4.2
"""

from repro.host.machine import Machine, MachineCrashed
from repro.host.process import OsProcess
from repro.host.syscalls import SyscallCostModel, TABLE_4_2_COSTS
from repro.host.failures import FailureModel

__all__ = [
    "FailureModel",
    "Machine",
    "MachineCrashed",
    "OsProcess",
    "SyscallCostModel",
    "TABLE_4_2_COSTS",
]
