"""Operating-system processes with CPU accounting.

An :class:`OsProcess` is the unit the paper's measurements observe: the
client process whose per-call real time and user/kernel CPU time appear in
Table 4.1.  It provides:

- *threads*: simulated control flow (the kernel's generator processes)
  registered with the process so that a machine crash kills them;
- *syscall wrappers* (``sendmsg``, ``recvmsg``, ``select``, ...) that
  charge the calibrated kernel-CPU cost, advance the simulated clock, and
  record per-syscall totals for the Table 4.3 execution profile;
- ``compute(ms)`` for user-mode CPU;
- ``rusage()`` — the ``getrusage`` analogue returning (user, kernel) ms.

Because a syscall occupies the CPU, repeated ``sendmsg`` calls to simulate
a multicast serialize — which is precisely why the paper's Figure 4.8 grows
linearly with troupe size.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from repro.host.machine import Machine, MachineCrashed
from repro.net.addresses import ProcessAddress
from repro.net.udp import UdpSocket
from repro.sim.kernel import AnyOf, Process, Simulator, Sleep
from repro.sim.timers import TimerService


class OsProcess:
    """A process on a simulated machine."""

    def __init__(self, machine: Machine, pid: int, name: str):
        self.machine = machine
        self.sim: Simulator = machine.sim
        self.pid = pid
        self.name = name
        self.alive = True
        self.user_time = 0.0
        self.kernel_time = 0.0
        #: per-syscall accumulated kernel CPU (ms) — the execution profile.
        self.syscall_times: Dict[str, float] = {}
        self.syscall_counts: Dict[str, int] = {}
        self._threads: List[Process] = []
        self._sockets: List[UdpSocket] = []
        # The single 4.2BSD interval timer, multiplexed (§4.2.4).  Each
        # re-arm charges a setitimer without advancing the clock (the
        # protocol code is not suspended by the hook).
        self.timers = TimerService(self.sim, on_arm=self._charge_setitimer)
        # Hot-path cache: syscall name -> (cost, shared Sleep(cost)).
        # Sleep objects are immutable to the kernel, so one instance per
        # (model, name) serves every charge; invalidated if the machine's
        # cost model object is ever replaced.
        self._syscall_cache: Dict[str, tuple] = {}
        self._syscall_cache_model = machine.cost_model

    def __repr__(self) -> str:
        return "<OsProcess %s/%s pid=%d>" % (self.machine.name, self.name, self.pid)

    @property
    def host(self) -> str:
        return self.machine.name

    # -- threads ---------------------------------------------------------

    def spawn(self, gen: Generator, name: Optional[str] = None,
              daemon: bool = False) -> Process:
        """Start a thread of control inside this process."""
        self._require_alive()
        full_name = "%s/%s/%s" % (self.machine.name, self.name,
                                  name or "thread%d" % len(self._threads))
        thread = self.sim.spawn(gen, name=full_name, daemon=daemon)
        self._threads.append(thread)
        return thread

    def exit(self) -> None:
        """Voluntary termination."""
        self._terminate(crashed=False)
        self.machine._process_exited(self)

    def _terminate(self, crashed: bool) -> None:
        if not self.alive:
            return
        self.alive = False
        self.timers.cancel_all()
        for thread in self._threads:
            if thread.alive:
                thread.kill(MachineCrashed("%s crashed" % self.machine.name)
                            if crashed else None)
        self._threads = []
        for sock in self._sockets:
            sock.close()
        self._sockets = []

    # -- CPU accounting ----------------------------------------------------

    def syscall(self, name: str):
        """Generator: perform a system call — charge its kernel CPU cost
        and advance the simulated clock by the same amount.

        ``yield from proc.syscall('sendmsg')``
        """
        self._require_alive()
        model = self.machine.cost_model
        if self._syscall_cache_model is not model:
            self._syscall_cache = {}
            self._syscall_cache_model = model
        entry = self._syscall_cache.get(name)
        if entry is None:
            cost = model.cost(name)
            entry = (cost, Sleep(cost))
            self._syscall_cache[name] = entry
        cost = entry[0]
        self.kernel_time += cost
        times = self.syscall_times
        times[name] = times.get(name, 0.0) + cost
        counts = self.syscall_counts
        counts[name] = counts.get(name, 0) + 1
        yield entry[1]

    def compute(self, ms: float):
        """Generator: user-mode computation for ``ms`` milliseconds."""
        self._require_alive()
        if ms < 0:
            raise ValueError("negative compute time: %r" % ms)
        self.user_time += ms
        yield Sleep(ms)

    def _account(self, name: str, cost: float) -> None:
        self.kernel_time += cost
        self.syscall_times[name] = self.syscall_times.get(name, 0.0) + cost
        self.syscall_counts[name] = self.syscall_counts.get(name, 0) + 1

    def _charge_setitimer(self) -> None:
        # Timer re-arms happen inside callbacks where we cannot suspend;
        # the cost is accounted but the clock is not advanced.
        if self.alive:
            self._account("setitimer", self.machine.cost_model.cost("setitimer"))

    def rusage(self) -> tuple:
        """(user ms, kernel ms), as getrusage reports (charged: 0.7 ms)."""
        self._account("getrusage", self.machine.cost_model.cost("getrusage"))
        return (self.user_time, self.kernel_time)

    def cpu_time(self) -> float:
        """Total CPU consumed so far, without charging anything."""
        return self.user_time + self.kernel_time

    # -- sockets and syscall wrappers ---------------------------------------

    def udp_socket(self, port: Optional[int] = None) -> UdpSocket:
        self._require_alive()
        sock = UdpSocket(self.machine.network, self.machine.name, port)
        self._sockets.append(sock)
        return sock

    def sendmsg(self, sock: UdpSocket, payload: bytes,
                dst: ProcessAddress):
        """Generator: charge a sendmsg, then transmit the datagram."""
        yield from self.syscall("sendmsg")
        sock.sendto(payload, dst)

    def sendmsg_multicast(self, sock: UdpSocket, payload: bytes,
                          destinations):
        """Generator: one hardware multicast costs one sendmsg (§4.3.3)."""
        yield from self.syscall("sendmsg")
        sock.multicast(payload, destinations)

    def recvmsg(self, sock: UdpSocket, timeout: Optional[float] = None):
        """Generator: the next datagram (or None on timeout).

        The recvmsg kernel cost is charged when data is actually copied
        out, matching how CPU time is attributed by getrusage.
        """
        self._require_alive()
        if timeout is None:
            datagram = yield sock.recv()
        else:
            index, value = yield AnyOf(sock.recv(), Sleep(timeout))
            if index == 1:
                return None
            datagram = value
        yield from self.syscall("recvmsg")
        return datagram

    def select(self, socks: List[UdpSocket],
               timeout: Optional[float] = None):
        """Generator: wait until one of the sockets is readable.

        Returns the list of readable sockets ([] on timeout).  Charges one
        select syscall, as the Circus event loop does.
        """
        self._require_alive()
        yield from self.syscall("select")
        ready = [s for s in socks if s.pending() > 0]
        if ready:
            return ready
        waits = [s.recv() for s in socks]
        if timeout is not None:
            index, value = yield AnyOf(AnyOf(*waits), Sleep(timeout))
            if index == 1:
                return []
            inner_index, datagram = value
        else:
            inner_index, datagram = yield AnyOf(*waits)
        # select does not consume data; push the datagram back at the head.
        sock = socks[inner_index]
        sock._incoming.push_front(datagram)
        return [sock]

    def gettimeofday(self):
        """Generator: the simulated wall-clock time (charged: 0.7 ms)."""
        yield from self.syscall("gettimeofday")
        return self.sim.now

    def sigblock(self):
        """Generator: enter a critical region (mask software interrupts)."""
        yield from self.syscall("sigblock")

    def sigsetmask(self):
        """Generator: leave a critical region."""
        yield from self.syscall("sigsetmask")

    def _require_alive(self) -> None:
        if not self.alive:
            raise MachineCrashed(
                "process %s on %s is dead" % (self.name, self.machine.name))
