"""Fail-stop machines.

Troupe members execute on fail-stop processors (§3.5.1): a machine either
works correctly or halts; it never malfunctions.  A crash kills every
process on the machine and loses all volatile state; the network stops
delivering to (and accepting from) the host.  ``restart`` brings the
machine back up empty — recovering state is the job of the reconfiguration
machinery (§6.4.1), not of the machine.

Machines carry an extensible attribute list (name/value pairs, §7.5.2)
used by the troupe configuration language.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.net.network import Network
from repro.sim.kernel import Simulator


class MachineCrashed(Exception):
    """Raised when an operation requires a machine that is down."""


class Machine:
    """A simulated computer: one network host plus its processes."""

    def __init__(self, sim: Simulator, network: Network, name: str,
                 attributes: Optional[Dict[str, Any]] = None,
                 cost_model=None):
        from repro.host.syscalls import SyscallCostModel

        self.sim = sim
        self.network = network
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.attributes.setdefault("name", name)
        self.cost_model = cost_model or SyscallCostModel()
        self.host = network.add_host(name)
        self.up = True
        self.processes: List = []  # live OsProcess objects
        self._next_pid = 1
        self.crash_count = 0
        self._crash_listeners: List[Callable[["Machine"], None]] = []
        self._restart_listeners: List[Callable[["Machine"], None]] = []

    def __repr__(self) -> str:
        return "<Machine %s (%s, %d procs)>" % (
            self.name, "up" if self.up else "down", len(self.processes))

    # -- process management --------------------------------------------

    def spawn_process(self, name: Optional[str] = None) -> "OsProcess":
        from repro.host.process import OsProcess

        self.require_up()
        pid = self._next_pid
        self._next_pid += 1
        if name is None:
            name = "pid%d" % pid
        proc = OsProcess(self, pid, name)
        self.processes.append(proc)
        return proc

    def _process_exited(self, proc: "OsProcess") -> None:
        if proc in self.processes:
            self.processes.remove(proc)

    # -- failure model ----------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: halt everything, lose all volatile state."""
        if not self.up:
            return
        self.up = False
        self.crash_count += 1
        self.network.set_host_up(self.name, False)
        for proc in list(self.processes):
            proc._terminate(crashed=True)
        self.processes = []
        for listener in list(self._crash_listeners):
            listener(self)

    def restart(self) -> None:
        """Bring the machine back up, empty."""
        if self.up:
            return
        self.up = True
        self.network.set_host_up(self.name, True)
        for listener in list(self._restart_listeners):
            listener(self)

    def on_crash(self, listener: Callable[["Machine"], None]) -> None:
        self._crash_listeners.append(listener)

    def on_restart(self, listener: Callable[["Machine"], None]) -> None:
        self._restart_listeners.append(listener)

    def require_up(self) -> None:
        if not self.up:
            raise MachineCrashed("machine %s is down" % self.name)

    # -- attributes (for the configuration language, §7.5.2) ------------

    def attribute(self, name: str, default: Any = None) -> Any:
        return self.attributes.get(name, default)

    def set_attribute(self, name: str, value: Any) -> None:
        self.attributes[name] = value
