"""Accelerated-build introspection.

The optional *accel* build compiles the three hottest modules —
``repro.sim.kernel``, ``repro.sim.events`` and
``repro.pairedmsg.segments`` — to C extensions with `mypyc
<https://mypyc.readthedocs.io/>`_:

    REPRO_ACCEL=1 pip install -e .[accel]

The pure-Python modules are always the source of truth: the compiled
build must produce byte-identical virtual time, which CI proves by
running ``benchmarks/compare.py`` (zero-delta gate vs
``BENCH_BASELINE.json``) under both builds.  When the toolchain is
missing the build silently stays pure-Python — acceleration is an
optimization, never a requirement.

This module answers "which build am I running?" at runtime: a
mypyc-compiled module is imported from a shared library instead of its
``.py`` source, so the check is just the module's ``__file__`` suffix.
"""

from __future__ import annotations

import importlib
from typing import Dict

#: the modules the accel build compiles (mirrored in setup.py).
ACCEL_MODULES = (
    "repro.sim.kernel",
    "repro.sim.events",
    "repro.pairedmsg.segments",
)

_COMPILED_SUFFIXES = (".so", ".pyd")


def _is_compiled(module) -> bool:
    origin = getattr(module, "__file__", None) or ""
    return origin.endswith(_COMPILED_SUFFIXES)


def compiled_modules() -> Dict[str, bool]:
    """Per-module compilation status, importing each hot module."""
    return {name: _is_compiled(importlib.import_module(name))
            for name in ACCEL_MODULES}


def enabled() -> bool:
    """True when every hot module is running compiled."""
    return all(compiled_modules().values())


def describe() -> str:
    """One-line build description for banners and bench reports."""
    modules = compiled_modules()
    if all(modules.values()):
        return "accelerated (mypyc)"
    if any(modules.values()):
        partial = ", ".join(sorted(n for n, c in modules.items() if c))
        return "partially accelerated (mypyc: %s)" % partial
    return "pure-Python"


def status() -> Dict[str, object]:
    """JSON-friendly build report (used by ``repro perf --json``)."""
    modules = compiled_modules()
    return {
        "build": describe(),
        "accelerated": all(modules.values()),
        "modules": modules,
    }
