"""The formal model of modules and threads (Chapter 3).

The paper models a thread's behaviour as an *event sequence* of procedure
calls and returns, defines *balanced intervals* (Definition 3.1), *thread
execution histories* (Definition 3.2), and *call stacks* (Definition
3.3), proves a unique decomposition (Theorem 3.4), and shows that a
globally deterministic program's history and states are determined by the
initial call and initial state (Theorem 3.7) — "a formal statement and
proof of the equivalence of the two crash recovery mechanisms: restoring
a consistent state from a checkpoint, or replaying events from a log."

This package makes the model executable: histories can be validated,
decomposed, restricted to a module, and replayed against state-machine
module definitions, and the theorems become checkable properties.
"""

from repro.model.events import (
    CALL,
    RETURN,
    Event,
    EventSequence,
    InvalidHistory,
    Procedure,
)
from repro.model.histories import (
    balanced_decomposition,
    call_stack,
    depth,
    execution_of,
    is_balanced,
    theorem_3_4_decomposition,
    validate_history,
)
from repro.model.determinism import (
    DeterministicModule,
    ModuleState,
    replay,
    run_program,
    validate_state_sequence,
)

__all__ = [
    "CALL",
    "DeterministicModule",
    "Event",
    "EventSequence",
    "InvalidHistory",
    "ModuleState",
    "Procedure",
    "RETURN",
    "balanced_decomposition",
    "call_stack",
    "depth",
    "execution_of",
    "is_balanced",
    "replay",
    "run_program",
    "theorem_3_4_decomposition",
    "validate_history",
    "validate_state_sequence",
]
