"""Deterministic modules, state sequences, and Theorem 3.7 (§3.3.2).

A module is *deterministic* (Definition 3.6) when a call's arguments,
the module state, and the results of the nested calls it has made so far
uniquely determine its next action.  :class:`DeterministicModule` captures
exactly that: each procedure is a Python generator that receives the
argument value and the module state, yields nested call requests
``(module, procedure, value)``, receives their results, and returns its
result.  Any program composed of such modules is globally deterministic.

:func:`run_program` executes a program and produces its thread execution
history plus the per-module state sequence.  :func:`replay` reconstructs
the final state from the history alone (the log-replay crash recovery of
§2.1.2) — and Theorem 3.7 says the two must agree, which the test suite
checks property-style.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, List, Tuple

from repro.model.events import (
    CALL,
    EventSequence,
    InvalidHistory,
    Procedure,
    call as make_call,
    ret as make_ret,
)


class ModuleState:
    """The single state variable of a module (§3.1): a named slot holding
    any value; procedures read and replace it."""

    def __init__(self, value: Any = None):
        self.value = value

    def __repr__(self) -> str:
        return "<ModuleState %r>" % (self.value,)


class DeterministicModule:
    """A module whose procedures are deterministic state transformers.

    ``procedures`` maps a name to a generator function
    ``proc(state, arg)`` which may ``result = yield (module, proc, value)``
    to make nested calls, mutates ``state.value`` as it pleases, and
    returns its result.  Determinism is the author's obligation, exactly
    as in the paper; the checker below will catch violations by replay
    divergence.
    """

    def __init__(self, name: str,
                 procedures: Dict[str, Callable],
                 initial_state: Any = None):
        self.name = name
        self.procedures = dict(procedures)
        self.initial_state = initial_state

    def fresh_state(self) -> ModuleState:
        return ModuleState(copy.deepcopy(self.initial_state))


class _Interpreter:
    """Runs a program of DeterministicModules, recording the history."""

    def __init__(self, modules: Dict[str, DeterministicModule]):
        self.modules = modules
        self.states = {name: module.fresh_state()
                       for name, module in modules.items()}
        self.events: List = []
        self.state_snapshots: List[Dict[str, Any]] = []

    def snapshot(self) -> Dict[str, Any]:
        return {name: copy.deepcopy(state.value)
                for name, state in self.states.items()}

    def invoke(self, module_name: str, proc_name: str, arg: Any) -> Any:
        module = self.modules[module_name]
        if proc_name not in module.procedures:
            raise KeyError("no procedure %s.%s" % (module_name, proc_name))
        self.events.append(make_call(module_name, proc_name, arg))
        self.state_snapshots.append(self.snapshot())
        gen = module.procedures[proc_name](self.states[module_name], arg)
        result = None
        if hasattr(gen, "send"):
            try:
                request = gen.send(None)
                while True:
                    nested_module, nested_proc, nested_arg = request
                    nested_result = self.invoke(nested_module, nested_proc,
                                                nested_arg)
                    request = gen.send(nested_result)
            except StopIteration as stop:
                result = getattr(stop, "value", None)
        else:
            result = gen
        self.events.append(make_ret(module_name, proc_name, result))
        self.state_snapshots.append(self.snapshot())
        return result


def run_program(modules: Dict[str, DeterministicModule],
                entry_module: str, entry_procedure: str, arg: Any = None,
                ) -> Tuple[Any, EventSequence, List[Dict[str, Any]]]:
    """Execute a program from its initial call.

    Returns (result, history, state_sequence) where state_sequence[i] is
    the program state *at* event i (after the events up to and including
    it) — the ``state`` function of Definition 3.5.
    """
    interp = _Interpreter(modules)
    result = interp.invoke(entry_module, entry_procedure, arg)
    return result, EventSequence(interp.events), interp.state_snapshots


def validate_state_sequence(history: EventSequence,
                            states: List[Dict[str, Any]]) -> None:
    """Check Definition 3.5: only M-events affect the state of M.

    ``states[i]`` is the program state at event i.  Raises InvalidHistory
    on a violation.  (Calls and returns may both change their module's
    state; everything else must leave it untouched.)
    """
    if len(states) != len(history):
        raise InvalidHistory(
            "state sequence length %d does not match history length %d"
            % (len(states), len(history)))
    events = list(history)
    module_names = set()
    for snapshot in states:
        module_names.update(snapshot)
    for index in range(1, len(events)):
        event = events[index]
        before, after = states[index - 1], states[index]
        for module in module_names:
            if module != event.module and before.get(module) != \
                    after.get(module):
                raise InvalidHistory(
                    "state of %s changed at non-%s event %s"
                    % (module, module, event))


def replay(modules: Dict[str, DeterministicModule],
           history: EventSequence) -> Dict[str, Any]:
    """Log-replay crash recovery (§2.1.2): reconstruct the final program
    state by re-executing the history's calls against fresh module states.

    Nested-call results are fed from the history itself, so replay works
    even if the modules made calls to nondeterministic peers — what
    matters is that each *module* is deterministic.  Raises
    InvalidHistory if re-execution diverges from the recorded history.
    """
    states = {name: module.fresh_state()
              for name, module in modules.items()}
    events = list(history)
    position = [0]

    def step(expected_call):
        index = position[0]
        if index >= len(events):
            raise InvalidHistory("history ended mid-execution")
        event = events[index]
        if not event.is_call or (expected_call is not None
                                 and (event.proc, event.val) != expected_call):
            raise InvalidHistory("replay diverged at %s" % (event,))
        position[0] += 1
        module = modules[event.module]
        gen = module.procedures[event.proc.name](states[event.module],
                                                 event.val)
        result = None
        if hasattr(gen, "send"):
            try:
                request = gen.send(None)
                while True:
                    nested_module, nested_proc, nested_arg = request
                    nested = step((Procedure(nested_module, nested_proc),
                                   nested_arg))
                    request = gen.send(nested)
            except StopIteration as stop:
                result = getattr(stop, "value", None)
        else:
            result = gen
        ret_event = events[position[0]] if position[0] < len(events) else None
        if (ret_event is None or not ret_event.is_return
                or ret_event.proc != event.proc):
            raise InvalidHistory("missing return for %s" % (event,))
        if ret_event.val != result:
            raise InvalidHistory(
                "replay produced %r where history recorded %r" % (
                    result, ret_event.val))
        position[0] += 1
        return result

    while position[0] < len(events):
        step(None)
    return {name: state.value for name, state in states.items()}
