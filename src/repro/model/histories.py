"""Balanced intervals, histories, and call stacks (§3.3.1).

- Definition 3.1: an interval <c, ..., r> is *balanced* if c is a call,
  r is a return from the same procedure, and the interior decomposes into
  balanced intervals B1...Bn (uniquely determined).
- Definition 3.2: a *thread execution history* is an event sequence in
  which every return matches a unique call, and which, if finite, is
  balanced.
- Definition 3.3: the *call stack* after a call c is the sequence of
  calls <= c that have not returned before c; its length is depth(c).
- Theorem 3.4: H_{<=e} decomposes uniquely as <c0,...,c> B1...Bn <e>.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.model.events import Event, EventSequence, InvalidHistory


def is_balanced(sequence: EventSequence) -> bool:
    """Definition 3.1, checked with a matching stack."""
    if len(sequence) == 0:
        return True
    stack: List[Event] = []
    for event in sequence:
        if event.is_call:
            stack.append(event)
        else:
            if not stack or stack[-1].proc != event.proc:
                return False
            stack.pop()
    return not stack


def balanced_decomposition(sequence: EventSequence,
                           ) -> List[EventSequence]:
    """The unique B1...Bn decomposition of a balanced sequence's interior
    (or of a concatenation of balanced intervals)."""
    blocks: List[EventSequence] = []
    depth_counter = 0
    start = None
    for index, event in enumerate(sequence):
        if event.is_call:
            if depth_counter == 0:
                start = index
            depth_counter += 1
        else:
            depth_counter -= 1
            if depth_counter < 0:
                raise InvalidHistory("return without a call")
            if depth_counter == 0:
                blocks.append(EventSequence(sequence.events[start:index + 1]))
                start = None
    if depth_counter != 0:
        raise InvalidHistory("sequence is not a concatenation of balanced "
                             "intervals")
    for block in blocks:
        if not is_balanced(block):
            raise InvalidHistory("mismatched procedures inside a block")
    return blocks


def validate_history(sequence: EventSequence,
                     require_finite: bool = True) -> None:
    """Check Definition 3.2; raises InvalidHistory on violations.

    With ``require_finite`` False the sequence may be a prefix of an
    infinite history: unreturned calls are permitted, but every return
    must still match.
    """
    if len(sequence) == 0:
        return
    if not sequence[0].is_call:
        raise InvalidHistory("history must begin with a call")
    stack: List[Event] = []
    for event in sequence:
        if event.is_call:
            stack.append(event)
        else:
            if not stack:
                raise InvalidHistory("return %s matches no call" % (event,))
            if stack[-1].proc != event.proc:
                raise InvalidHistory(
                    "return %s does not match call %s" % (event, stack[-1]))
            stack.pop()
    if require_finite and stack:
        raise InvalidHistory("finite history is unbalanced: %d open calls"
                             % len(stack))


def execution_of(history: EventSequence, call_event: Event) -> EventSequence:
    """Exec(c): the balanced interval from c to its return, or the rest of
    the history if c never returns."""
    start = history.index_of(call_event)
    if not call_event.is_call:
        raise ValueError("Exec is defined on calls")
    depth_counter = 0
    for index in range(start, len(history)):
        event = history[index]
        if event.is_call:
            depth_counter += 1
        else:
            depth_counter -= 1
            if depth_counter == 0:
                return EventSequence(history.events[start:index + 1])
    return EventSequence(history.events[start:])


def call_stack(history: EventSequence, at: Event) -> List[Event]:
    """Callstack(c): calls c' <= c that do not return before c
    (Definition 3.3) — equivalently, H_{<=c} with balanced intervals
    removed."""
    prefix = history.up_to(at)
    stack: List[Event] = []
    for event in prefix:
        if event.is_call:
            stack.append(event)
        else:
            stack.pop()
    return stack


def depth(history: EventSequence, call_event: Event) -> int:
    """depth(c) = |Callstack(c)|."""
    return len(call_stack(history, call_event))


def theorem_3_4_decomposition(history: EventSequence, at: Event,
                              ) -> Tuple[EventSequence, List[EventSequence]]:
    """The unique form <c0, ..., c> B1...Bn <e> of H_{<=e} (Theorem 3.4).

    ``c`` is the call that returns at ``e`` when ``e`` is a return, and
    the predecessor of ``e`` in Callstack(e) when ``e`` is a call — in
    both cases, the deepest call still open just before ``e``.  Returns
    the contiguous event interval <c0, ..., c> and the balanced intervals
    B1...Bn between c and e.  For the initial event the interval and
    blocks are empty.
    """
    prefix = history.up_to(at)
    before = EventSequence(prefix.events[:-1])
    stack_positions: List[int] = []
    for index, event in enumerate(before):
        if event.is_call:
            stack_positions.append(index)
        else:
            stack_positions.pop()
    if stack_positions:
        c_index = stack_positions[-1]
        interval = EventSequence(before.events[:c_index + 1])
        tail = EventSequence(before.events[c_index + 1:])
    else:
        interval = EventSequence()
        tail = before
    blocks = balanced_decomposition(tail)
    return interval, blocks
