"""Events and event sequences (§3.3.1).

An event is a call to or return from a procedure, a quadruple
(op, proc, val, id); an event sequence is an ordered set of distinct
events.  Subsequences need not be contiguous; restriction to a module M
keeps only M-events.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, List, NamedTuple, Optional

CALL = "call"
RETURN = "return"


class InvalidHistory(Exception):
    """An event sequence violates the thread-execution-history axioms."""


class Procedure(NamedTuple):
    """A procedure and the unique module exporting it: module(P)."""

    module: str
    name: str

    def __str__(self) -> str:
        return "%s.%s" % (self.module, self.name)


class Event(NamedTuple):
    """(op, proc, val, id): op(e), proc(e), val(e), id(e) of §3.3.1."""

    op: str
    proc: Procedure
    val: Any
    eid: int

    @property
    def module(self) -> str:
        """module(e) = module(proc(e))."""
        return self.proc.module

    @property
    def is_call(self) -> bool:
        return self.op == CALL

    @property
    def is_return(self) -> bool:
        return self.op == RETURN

    def __str__(self) -> str:
        arrow = "->" if self.is_call else "<-"
        return "%s%s(%r)#%d" % (arrow, self.proc, self.val, self.eid)


_event_ids = itertools.count(1)


def call(module: str, name: str, val: Any = None,
         eid: Optional[int] = None) -> Event:
    return Event(CALL, Procedure(module, name), val,
                 next(_event_ids) if eid is None else eid)


def ret(module: str, name: str, val: Any = None,
        eid: Optional[int] = None) -> Event:
    return Event(RETURN, Procedure(module, name), val,
                 next(_event_ids) if eid is None else eid)


class EventSequence:
    """An ordered set of distinct events, with the §3.3.1 operations."""

    def __init__(self, events: Iterable[Event] = ()):
        self.events: List[Event] = list(events)
        seen = set()
        for event in self.events:
            if event.eid in seen:
                raise InvalidHistory("duplicate event id %d" % event.eid)
            seen.add(event.eid)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __getitem__(self, index):
        return self.events[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, EventSequence):
            return self.events == other.events
        return NotImplemented

    def __repr__(self) -> str:
        return "<EventSequence [%s]>" % ", ".join(str(e) for e in self.events)

    def index_of(self, event: Event) -> int:
        for index, candidate in enumerate(self.events):
            if candidate.eid == event.eid:
                return index
        raise ValueError("event not in sequence: %s" % (event,))

    def up_to(self, event: Event) -> "EventSequence":
        """H_{<=e}: the portion of the sequence up to and including e."""
        return EventSequence(self.events[:self.index_of(event) + 1])

    def interval(self, left: Event, right: Event) -> "EventSequence":
        """The event interval <e1, ..., e2> (contiguous)."""
        i, j = self.index_of(left), self.index_of(right)
        if i > j:
            raise ValueError("interval endpoints out of order")
        return EventSequence(self.events[i:j + 1])

    def restrict_to_module(self, module: str) -> "EventSequence":
        """H^M: the subsequence of M-events."""
        return EventSequence(e for e in self.events if e.module == module)

    def concat(self, other: "EventSequence") -> "EventSequence":
        return EventSequence(self.events + list(other.events))
