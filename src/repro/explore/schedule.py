"""Fault schedules: seed-derived, replayable sequences of typed faults.

A :class:`FaultSchedule` is the deterministic heart of the explorer: the
same ``(seed, machines, horizon, profile)`` always generates the same
action list, every action serializes losslessly to JSON (the *repro
script* the fuzzer hands you when a seed fails), and the whole schedule
hashes to a stable digest so two runs can prove they explored the same
fault pattern.

Action taxonomy (all times are virtual milliseconds):

==============  ==========================================================
``crash``       crash a machine at ``at``; repair it ``duration`` ms
                later (``duration=None`` leaves it down forever)
``partition``   split the named machines into groups at ``at``; hosts
                not named fall into the implicit leftover group; heal
                after ``duration`` ms
``loss``        a loss window: matching packets dropped with
                ``probability`` (optionally scoped to one ``src``/``dst``)
``duplicate``   a duplication window
``delay``       an extra-latency window (``extra`` ms per packet)
``reorder``     a reordering window: with ``probability`` a packet is
                held back up to ``hold`` extra ms, overtaking later ones
==============  ==========================================================

Two kinds are *reconfiguration-aware* (§6.4.1): instead of firing at
``at`` they are **armed** at ``at`` and fire when the driver observes the
matching membership-change bus event, so the fault lands exactly inside
the §6 window the paper worries about:

==========================  ==============================================
``crash-during-transfer``   armed at ``at``; crashes ``machine`` the
                            moment the next ``bind.get_state`` event
                            (a member externalizing state for a joiner)
                            is observed; disarms after ``expiry`` ms
``partition-during-join``   armed at ``at``; isolates ``machine`` from
                            every other host the moment the next
                            ``bind.member`` *add* event (the binding
                            agent committing a join) is observed; heals
                            ``duration`` ms later; disarms after
                            ``expiry`` ms
==========================  ==============================================

An armed action whose trigger never happens before ``expiry`` simply
never fires — the driver records it as expired, and the run digest (which
includes the applied-op log) still distinguishes fired from unfired.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim.rng import RandomStream

#: the repro-script file format tag.
SCHEDULE_FORMAT = "repro.fuzz/1"


# ---------------------------------------------------------------------------
# Actions
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class FaultAction:
    """Base: one typed fault at a virtual time."""

    at: float

    #: subclasses set this; doubles as the JSON discriminator.
    kind = ""

    @property
    def window(self) -> Optional[float]:
        """The action's duration when it is a window, else ``None``."""
        return getattr(self, "duration", None)

    def to_dict(self) -> Dict[str, Any]:
        out = {"kind": self.kind}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, tuple):
                value = [list(g) if isinstance(g, tuple) else g
                         for g in value]
            out[field.name] = value
        return out

    def describe(self) -> str:
        payload = ", ".join(
            "%s=%s" % (f.name, getattr(self, f.name))
            for f in dataclasses.fields(self) if f.name != "at")
        return "%s@%g(%s)" % (self.kind, self.at, payload)


@dataclasses.dataclass(frozen=True)
class Crash(FaultAction):
    machine: str = ""
    duration: Optional[float] = None   # None: never repaired

    kind = "crash"


@dataclasses.dataclass(frozen=True)
class Partition(FaultAction):
    duration: float = 0.0
    groups: Tuple[Tuple[str, ...], ...] = ()

    kind = "partition"

    def __post_init__(self):
        object.__setattr__(self, "groups", tuple(
            tuple(group) for group in self.groups))


@dataclasses.dataclass(frozen=True)
class Loss(FaultAction):
    duration: float = 0.0
    probability: float = 0.0
    src: Optional[str] = None
    dst: Optional[str] = None

    kind = "loss"


@dataclasses.dataclass(frozen=True)
class Duplicate(FaultAction):
    duration: float = 0.0
    probability: float = 0.0
    src: Optional[str] = None
    dst: Optional[str] = None

    kind = "duplicate"


@dataclasses.dataclass(frozen=True)
class Delay(FaultAction):
    duration: float = 0.0
    extra: float = 0.0
    src: Optional[str] = None
    dst: Optional[str] = None

    kind = "delay"


@dataclasses.dataclass(frozen=True)
class Reorder(FaultAction):
    duration: float = 0.0
    probability: float = 0.0
    hold: float = 5.0
    src: Optional[str] = None
    dst: Optional[str] = None

    kind = "reorder"


@dataclasses.dataclass(frozen=True)
class CrashDuringTransfer(FaultAction):
    """Armed at ``at``; crashes ``machine`` when the next
    ``bind.get_state`` bus event lands — i.e. mid-state-transfer, after
    an existing member externalized its state for a joiner but before
    the reply (and the subsequent ``add_troupe_member``) completes."""

    machine: str = ""
    duration: Optional[float] = None   # repair delay once fired; None: never
    expiry: float = 2000.0             # disarm this long after ``at``

    kind = "crash-during-transfer"

    @property
    def window(self) -> Optional[float]:
        # Not a plain window: ``duration`` is the post-trigger repair
        # delay, and the shrinker/driver must not treat it as one.
        return None


@dataclasses.dataclass(frozen=True)
class PartitionDuringJoin(FaultAction):
    """Armed at ``at``; isolates ``machine`` from every other host when
    the next ``bind.member`` *add* event lands — i.e. the instant the
    binding agent commits a membership change, while the nested
    ``set_troupe_id`` calls and the joiner's first serving window are
    still in flight.  Heals ``duration`` ms after firing."""

    duration: float = 0.0
    machine: str = ""
    expiry: float = 2000.0

    kind = "partition-during-join"


ACTION_TYPES: Dict[str, type] = {
    cls.kind: cls
    for cls in (Crash, Partition, Loss, Duplicate, Delay, Reorder,
                CrashDuringTransfer, PartitionDuringJoin)
}


def action_from_dict(data: Dict[str, Any]) -> FaultAction:
    data = dict(data)
    kind = data.pop("kind", None)
    cls = ACTION_TYPES.get(kind)
    if cls is None:
        raise ValueError("unknown fault action kind: %r" % (kind,))
    if cls is Partition and "groups" in data:
        data["groups"] = tuple(tuple(g) for g in data["groups"])
    return cls(**data)


# ---------------------------------------------------------------------------
# The schedule
# ---------------------------------------------------------------------------

def _canonical_json(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def digest_of(obj: Any) -> str:
    """A stable sha256 hex digest of any JSON-able object."""
    return hashlib.sha256(_canonical_json(obj).encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class FaultSchedule:
    """A replayable fault schedule: scenario, seed, horizon, actions."""

    scenario: str
    seed: int
    horizon: float
    actions: Tuple[FaultAction, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "actions", tuple(self.actions))

    def with_actions(self, actions: Sequence[FaultAction]) -> "FaultSchedule":
        return dataclasses.replace(self, actions=tuple(actions))

    def machines(self) -> List[str]:
        """Every machine name the schedule references (sorted)."""
        names = set()
        for action in self.actions:
            if isinstance(action, Crash):
                names.add(action.machine)
            elif isinstance(action, Partition):
                for group in action.groups:
                    names.update(group)
            elif isinstance(action, (CrashDuringTransfer, PartitionDuringJoin)):
                names.add(action.machine)
            else:
                if action.src:
                    names.add(action.src)
                if action.dst:
                    names.add(action.dst)
        return sorted(names)

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": SCHEDULE_FORMAT,
            "scenario": self.scenario,
            "seed": self.seed,
            "horizon": self.horizon,
            "actions": [action.to_dict() for action in self.actions],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSchedule":
        fmt = data.get("format", SCHEDULE_FORMAT)
        if fmt != SCHEDULE_FORMAT:
            raise ValueError("unsupported schedule format: %r" % (fmt,))
        return cls(
            scenario=data["scenario"],
            seed=int(data["seed"]),
            horizon=float(data["horizon"]),
            actions=tuple(action_from_dict(a) for a in data["actions"]))

    def save(self, path) -> Dict[str, Any]:
        payload = self.to_dict()
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        return payload

    @classmethod
    def load(cls, path) -> "FaultSchedule":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    def digest(self) -> str:
        return digest_of(self.to_dict())

    def describe(self) -> str:
        return "\n".join(action.describe() for action in self.actions)


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class Profile:
    """Knobs for schedule generation: how many faults, of which kinds,
    how dense.  Weights of zero disable a kind entirely (a profile with
    only ``crash`` weight fuzzes pure crash/repair schedules)."""

    min_actions: int = 2
    max_actions: int = 8
    crash_weight: int = 4
    partition_weight: int = 3
    loss_weight: int = 3
    duplicate_weight: int = 2
    delay_weight: int = 2
    reorder_weight: int = 2
    #: probability a crash is permanent (no repair before the horizon).
    permanent_crash_chance: float = 0.2
    #: window durations as fractions of the horizon.
    min_window: float = 0.05
    max_window: float = 0.4
    #: reconfiguration-aware (armed) kinds.  Default 0 so every profile
    #: that predates them keeps generating byte-identical schedules.
    crash_during_transfer_weight: int = 0
    partition_during_join_weight: int = 0
    #: guarantee at least this many crash-during-transfer actions per
    #: schedule (topped up after the weighted draw, so the weighted
    #: portion of the rng sequence is unchanged).
    min_crash_during_transfer: int = 0
    #: expiry for armed actions, as a fraction of the horizon.
    arm_expiry: float = 0.9

    def weighted_kinds(self) -> List[str]:
        expanded: List[str] = []
        for kind, weight in (("crash", self.crash_weight),
                             ("partition", self.partition_weight),
                             ("loss", self.loss_weight),
                             ("duplicate", self.duplicate_weight),
                             ("delay", self.delay_weight),
                             ("reorder", self.reorder_weight),
                             # appended after the original six so legacy
                             # profiles draw the exact same choices
                             ("crash-during-transfer",
                              self.crash_during_transfer_weight),
                             ("partition-during-join",
                              self.partition_during_join_weight)):
            expanded.extend([kind] * max(0, weight))
        if not expanded:
            raise ValueError("profile disables every fault kind")
        return expanded


DEFAULT_PROFILE = Profile()

#: dense, correlated faults (the 'performing work efficiently in the
#: presence of faults' regime): more actions, longer windows, more
#: permanent crashes.
ADVERSARIAL_PROFILE = Profile(
    min_actions=5, max_actions=14, permanent_crash_chance=0.35,
    min_window=0.1, max_window=0.6)

#: crash/repair only — the §6.4.2 availability regime, made adversarial.
CRASH_ONLY_PROFILE = Profile(
    partition_weight=0, loss_weight=0, duplicate_weight=0,
    delay_weight=0, reorder_weight=0)

#: reconfiguration under fire (§6.4.1): armed faults that land
#: mid-state-transfer and mid-join.  Blanket partitions are disabled —
#: partitions only arrive event-aligned via ``partition-during-join`` —
#: because the elastic scenarios run with all six oracles and an
#: arbitrary long partition makes §4.3.5 troupe-determinism hazards
#: (which the paper accepts as a known residual risk) dominate the
#: signal.  Crashes, loss, and delay remain.
ELASTIC_PROFILE = Profile(
    min_actions=2, max_actions=6,
    partition_weight=0, duplicate_weight=0, reorder_weight=0,
    loss_weight=1, delay_weight=1, crash_weight=2,
    crash_during_transfer_weight=3, partition_during_join_weight=1,
    min_crash_during_transfer=1, permanent_crash_chance=0.0,
    min_window=0.02, max_window=0.15)

#: the dense variant: more armed faults, permanent crashes allowed.
ELASTIC_ADVERSARIAL_PROFILE = Profile(
    min_actions=4, max_actions=10,
    partition_weight=0, duplicate_weight=0, reorder_weight=0,
    loss_weight=2, delay_weight=2, crash_weight=3,
    crash_during_transfer_weight=4, partition_during_join_weight=2,
    min_crash_during_transfer=1, permanent_crash_chance=0.15,
    min_window=0.03, max_window=0.25)


def _round(value: float) -> float:
    return round(value, 3)


def generate(seed: int, machines: Sequence[str], horizon: float,
             profile: Optional[Profile] = None,
             scenario: str = "") -> FaultSchedule:
    """Derive a :class:`FaultSchedule` from a seed, deterministically.

    All randomness flows from one :class:`~repro.sim.rng.RandomStream`
    forked off ``(seed, "explore-schedule")``, so the same seed always
    yields the identical action list — the property the replay files,
    the shrinker, and the CI digests all rest on.
    """
    if not machines:
        raise ValueError("cannot generate a schedule over zero machines")
    profile = profile or DEFAULT_PROFILE
    rng = RandomStream(seed, "explore-schedule")
    kinds = profile.weighted_kinds()
    count = rng.randint(profile.min_actions, profile.max_actions)
    machines = list(machines)
    actions: List[FaultAction] = []
    for _ in range(count):
        kind = rng.choice(kinds)
        at = _round(rng.uniform(0.0, horizon * 0.8))
        window = _round(rng.uniform(profile.min_window * horizon,
                                    profile.max_window * horizon))
        expiry = _round(profile.arm_expiry * horizon)
        if kind == "crash":
            duration: Optional[float] = window
            if rng.chance(profile.permanent_crash_chance):
                duration = None
            actions.append(Crash(at=at, machine=rng.choice(machines),
                                 duration=duration))
        elif kind == "crash-during-transfer":
            repair: Optional[float] = window
            if rng.chance(profile.permanent_crash_chance):
                repair = None
            actions.append(CrashDuringTransfer(
                at=at, machine=rng.choice(machines),
                duration=repair, expiry=expiry))
        elif kind == "partition-during-join":
            actions.append(PartitionDuringJoin(
                at=at, duration=window, machine=rng.choice(machines),
                expiry=expiry))
        elif kind == "partition":
            shuffled = list(machines)
            rng.shuffle(shuffled)
            split = rng.randint(1, max(1, len(shuffled) - 1))
            groups = (tuple(sorted(shuffled[:split])),
                      tuple(sorted(shuffled[split:])))
            groups = tuple(g for g in groups if g)
            actions.append(Partition(at=at, duration=window, groups=groups))
        else:
            src = dst = None
            if rng.chance(0.5):
                src = rng.choice(machines)
                dst = rng.choice(machines)
            if kind == "loss":
                actions.append(Loss(
                    at=at, duration=window,
                    probability=_round(rng.uniform(0.1, 0.9)),
                    src=src, dst=dst))
            elif kind == "duplicate":
                actions.append(Duplicate(
                    at=at, duration=window,
                    probability=_round(rng.uniform(0.1, 0.6)),
                    src=src, dst=dst))
            elif kind == "delay":
                actions.append(Delay(
                    at=at, duration=window,
                    extra=_round(rng.uniform(1.0, 50.0)),
                    src=src, dst=dst))
            else:
                actions.append(Reorder(
                    at=at, duration=window,
                    probability=_round(rng.uniform(0.1, 0.8)),
                    hold=_round(rng.uniform(1.0, 20.0)),
                    src=src, dst=dst))
    # Top up armed mid-transfer crashes *after* the weighted draw, so
    # profiles without the floor consume the identical rng sequence.
    have = sum(1 for a in actions if isinstance(a, CrashDuringTransfer))
    for _ in range(max(0, profile.min_crash_during_transfer - have)):
        at = _round(rng.uniform(0.0, horizon * 0.5))
        window = _round(rng.uniform(profile.min_window * horizon,
                                    profile.max_window * horizon))
        repair = None if rng.chance(profile.permanent_crash_chance) else window
        actions.append(CrashDuringTransfer(
            at=at, machine=rng.choice(machines), duration=repair,
            expiry=_round(profile.arm_expiry * horizon)))
    actions.sort(key=lambda a: (a.at, a.kind))
    return FaultSchedule(scenario=scenario, seed=seed, horizon=horizon,
                         actions=tuple(actions))
