"""Fault schedules: seed-derived, replayable sequences of typed faults.

A :class:`FaultSchedule` is the deterministic heart of the explorer: the
same ``(seed, machines, horizon, profile)`` always generates the same
action list, every action serializes losslessly to JSON (the *repro
script* the fuzzer hands you when a seed fails), and the whole schedule
hashes to a stable digest so two runs can prove they explored the same
fault pattern.

Action taxonomy (all times are virtual milliseconds):

==============  ==========================================================
``crash``       crash a machine at ``at``; repair it ``duration`` ms
                later (``duration=None`` leaves it down forever)
``partition``   split the named machines into groups at ``at``; hosts
                not named fall into the implicit leftover group; heal
                after ``duration`` ms
``loss``        a loss window: matching packets dropped with
                ``probability`` (optionally scoped to one ``src``/``dst``)
``duplicate``   a duplication window
``delay``       an extra-latency window (``extra`` ms per packet)
``reorder``     a reordering window: with ``probability`` a packet is
                held back up to ``hold`` extra ms, overtaking later ones
==============  ==========================================================
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim.rng import RandomStream

#: the repro-script file format tag.
SCHEDULE_FORMAT = "repro.fuzz/1"


# ---------------------------------------------------------------------------
# Actions
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class FaultAction:
    """Base: one typed fault at a virtual time."""

    at: float

    #: subclasses set this; doubles as the JSON discriminator.
    kind = ""

    @property
    def window(self) -> Optional[float]:
        """The action's duration when it is a window, else ``None``."""
        return getattr(self, "duration", None)

    def to_dict(self) -> Dict[str, Any]:
        out = {"kind": self.kind}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, tuple):
                value = [list(g) if isinstance(g, tuple) else g
                         for g in value]
            out[field.name] = value
        return out

    def describe(self) -> str:
        payload = ", ".join(
            "%s=%s" % (f.name, getattr(self, f.name))
            for f in dataclasses.fields(self) if f.name != "at")
        return "%s@%g(%s)" % (self.kind, self.at, payload)


@dataclasses.dataclass(frozen=True)
class Crash(FaultAction):
    machine: str = ""
    duration: Optional[float] = None   # None: never repaired

    kind = "crash"


@dataclasses.dataclass(frozen=True)
class Partition(FaultAction):
    duration: float = 0.0
    groups: Tuple[Tuple[str, ...], ...] = ()

    kind = "partition"

    def __post_init__(self):
        object.__setattr__(self, "groups", tuple(
            tuple(group) for group in self.groups))


@dataclasses.dataclass(frozen=True)
class Loss(FaultAction):
    duration: float = 0.0
    probability: float = 0.0
    src: Optional[str] = None
    dst: Optional[str] = None

    kind = "loss"


@dataclasses.dataclass(frozen=True)
class Duplicate(FaultAction):
    duration: float = 0.0
    probability: float = 0.0
    src: Optional[str] = None
    dst: Optional[str] = None

    kind = "duplicate"


@dataclasses.dataclass(frozen=True)
class Delay(FaultAction):
    duration: float = 0.0
    extra: float = 0.0
    src: Optional[str] = None
    dst: Optional[str] = None

    kind = "delay"


@dataclasses.dataclass(frozen=True)
class Reorder(FaultAction):
    duration: float = 0.0
    probability: float = 0.0
    hold: float = 5.0
    src: Optional[str] = None
    dst: Optional[str] = None

    kind = "reorder"


ACTION_TYPES: Dict[str, type] = {
    cls.kind: cls
    for cls in (Crash, Partition, Loss, Duplicate, Delay, Reorder)
}


def action_from_dict(data: Dict[str, Any]) -> FaultAction:
    data = dict(data)
    kind = data.pop("kind", None)
    cls = ACTION_TYPES.get(kind)
    if cls is None:
        raise ValueError("unknown fault action kind: %r" % (kind,))
    if cls is Partition and "groups" in data:
        data["groups"] = tuple(tuple(g) for g in data["groups"])
    return cls(**data)


# ---------------------------------------------------------------------------
# The schedule
# ---------------------------------------------------------------------------

def _canonical_json(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def digest_of(obj: Any) -> str:
    """A stable sha256 hex digest of any JSON-able object."""
    return hashlib.sha256(_canonical_json(obj).encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class FaultSchedule:
    """A replayable fault schedule: scenario, seed, horizon, actions."""

    scenario: str
    seed: int
    horizon: float
    actions: Tuple[FaultAction, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "actions", tuple(self.actions))

    def with_actions(self, actions: Sequence[FaultAction]) -> "FaultSchedule":
        return dataclasses.replace(self, actions=tuple(actions))

    def machines(self) -> List[str]:
        """Every machine name the schedule references (sorted)."""
        names = set()
        for action in self.actions:
            if isinstance(action, Crash):
                names.add(action.machine)
            elif isinstance(action, Partition):
                for group in action.groups:
                    names.update(group)
            else:
                if action.src:
                    names.add(action.src)
                if action.dst:
                    names.add(action.dst)
        return sorted(names)

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": SCHEDULE_FORMAT,
            "scenario": self.scenario,
            "seed": self.seed,
            "horizon": self.horizon,
            "actions": [action.to_dict() for action in self.actions],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSchedule":
        fmt = data.get("format", SCHEDULE_FORMAT)
        if fmt != SCHEDULE_FORMAT:
            raise ValueError("unsupported schedule format: %r" % (fmt,))
        return cls(
            scenario=data["scenario"],
            seed=int(data["seed"]),
            horizon=float(data["horizon"]),
            actions=tuple(action_from_dict(a) for a in data["actions"]))

    def save(self, path) -> Dict[str, Any]:
        payload = self.to_dict()
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        return payload

    @classmethod
    def load(cls, path) -> "FaultSchedule":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    def digest(self) -> str:
        return digest_of(self.to_dict())

    def describe(self) -> str:
        return "\n".join(action.describe() for action in self.actions)


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class Profile:
    """Knobs for schedule generation: how many faults, of which kinds,
    how dense.  Weights of zero disable a kind entirely (a profile with
    only ``crash`` weight fuzzes pure crash/repair schedules)."""

    min_actions: int = 2
    max_actions: int = 8
    crash_weight: int = 4
    partition_weight: int = 3
    loss_weight: int = 3
    duplicate_weight: int = 2
    delay_weight: int = 2
    reorder_weight: int = 2
    #: probability a crash is permanent (no repair before the horizon).
    permanent_crash_chance: float = 0.2
    #: window durations as fractions of the horizon.
    min_window: float = 0.05
    max_window: float = 0.4

    def weighted_kinds(self) -> List[str]:
        expanded: List[str] = []
        for kind, weight in (("crash", self.crash_weight),
                             ("partition", self.partition_weight),
                             ("loss", self.loss_weight),
                             ("duplicate", self.duplicate_weight),
                             ("delay", self.delay_weight),
                             ("reorder", self.reorder_weight)):
            expanded.extend([kind] * max(0, weight))
        if not expanded:
            raise ValueError("profile disables every fault kind")
        return expanded


DEFAULT_PROFILE = Profile()

#: dense, correlated faults (the 'performing work efficiently in the
#: presence of faults' regime): more actions, longer windows, more
#: permanent crashes.
ADVERSARIAL_PROFILE = Profile(
    min_actions=5, max_actions=14, permanent_crash_chance=0.35,
    min_window=0.1, max_window=0.6)

#: crash/repair only — the §6.4.2 availability regime, made adversarial.
CRASH_ONLY_PROFILE = Profile(
    partition_weight=0, loss_weight=0, duplicate_weight=0,
    delay_weight=0, reorder_weight=0)


def _round(value: float) -> float:
    return round(value, 3)


def generate(seed: int, machines: Sequence[str], horizon: float,
             profile: Optional[Profile] = None,
             scenario: str = "") -> FaultSchedule:
    """Derive a :class:`FaultSchedule` from a seed, deterministically.

    All randomness flows from one :class:`~repro.sim.rng.RandomStream`
    forked off ``(seed, "explore-schedule")``, so the same seed always
    yields the identical action list — the property the replay files,
    the shrinker, and the CI digests all rest on.
    """
    if not machines:
        raise ValueError("cannot generate a schedule over zero machines")
    profile = profile or DEFAULT_PROFILE
    rng = RandomStream(seed, "explore-schedule")
    kinds = profile.weighted_kinds()
    count = rng.randint(profile.min_actions, profile.max_actions)
    machines = list(machines)
    actions: List[FaultAction] = []
    for _ in range(count):
        kind = rng.choice(kinds)
        at = _round(rng.uniform(0.0, horizon * 0.8))
        window = _round(rng.uniform(profile.min_window * horizon,
                                    profile.max_window * horizon))
        if kind == "crash":
            duration: Optional[float] = window
            if rng.chance(profile.permanent_crash_chance):
                duration = None
            actions.append(Crash(at=at, machine=rng.choice(machines),
                                 duration=duration))
        elif kind == "partition":
            shuffled = list(machines)
            rng.shuffle(shuffled)
            split = rng.randint(1, max(1, len(shuffled) - 1))
            groups = (tuple(sorted(shuffled[:split])),
                      tuple(sorted(shuffled[split:])))
            groups = tuple(g for g in groups if g)
            actions.append(Partition(at=at, duration=window, groups=groups))
        else:
            src = dst = None
            if rng.chance(0.5):
                src = rng.choice(machines)
                dst = rng.choice(machines)
            if kind == "loss":
                actions.append(Loss(
                    at=at, duration=window,
                    probability=_round(rng.uniform(0.1, 0.9)),
                    src=src, dst=dst))
            elif kind == "duplicate":
                actions.append(Duplicate(
                    at=at, duration=window,
                    probability=_round(rng.uniform(0.1, 0.6)),
                    src=src, dst=dst))
            elif kind == "delay":
                actions.append(Delay(
                    at=at, duration=window,
                    extra=_round(rng.uniform(1.0, 50.0)),
                    src=src, dst=dst))
            else:
                actions.append(Reorder(
                    at=at, duration=window,
                    probability=_round(rng.uniform(0.1, 0.8)),
                    hold=_round(rng.uniform(1.0, 20.0)),
                    src=src, dst=dst))
    actions.sort(key=lambda a: (a.at, a.kind))
    return FaultSchedule(scenario=scenario, seed=seed, horizon=horizon,
                         actions=tuple(actions))
