"""Greedy schedule shrinking: minimize a failing fault schedule.

Given a failing action list and a ``reproduces(actions) -> bool``
predicate (re-run the scenario under the candidate schedule; does the
violation still fire?), the shrinker:

1. **drops** actions, delta-debugging style — whole halves first, then
   smaller chunks, down to single actions — restarting whenever a drop
   succeeds, and
2. **narrows** the survivors — halving window durations and delaying
   window starts while the failure keeps reproducing,

until a fixpoint or the attempt budget runs out.  The result is the
small, human-readable repro script the fuzzer reports.  Every candidate
evaluation is one full deterministic re-run, so shrinking is sound by
construction: the returned schedule was *observed* to still violate.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Sequence, Tuple

from repro.explore.schedule import FaultAction

#: stop narrowing a window below this many virtual milliseconds.
MIN_WINDOW = 1.0


class _Budget:
    def __init__(self, limit: int):
        self.limit = limit
        self.spent = 0

    def take(self) -> bool:
        if self.spent >= self.limit:
            return False
        self.spent += 1
        return True


def _narrowings(action: FaultAction) -> List[FaultAction]:
    """Cheaper variants of one action, most aggressive first."""
    duration = getattr(action, "duration", None)
    if duration is None or duration <= MIN_WINDOW:
        return []
    half = duration / 2.0
    return [
        # keep the start, halve the window
        dataclasses.replace(action, duration=half),
        # drop the first half of the window
        dataclasses.replace(action, at=action.at + half, duration=half),
    ]


def shrink_actions(
        actions: Sequence[FaultAction],
        reproduces: Callable[[List[FaultAction]], bool],
        max_attempts: int = 300,
) -> Tuple[List[FaultAction], int]:
    """Minimize ``actions`` under ``reproduces``; returns the shrunken
    list and the number of re-runs spent."""
    budget = _Budget(max_attempts)
    current = list(actions)

    def attempt(candidate: List[FaultAction]) -> bool:
        return budget.take() and reproduces(candidate)

    improved = True
    while improved:
        improved = False
        # -- pass 1: drop chunks (ddmin) --------------------------------
        chunk = max(1, len(current) // 2)
        while chunk >= 1:
            i = 0
            while i + chunk <= len(current):
                candidate = current[:i] + current[i + chunk:]
                if attempt(candidate):
                    current = candidate
                    improved = True
                    # stay at i: the next chunk shifted into place
                else:
                    i += chunk
            chunk //= 2
        # -- pass 2: narrow windows -------------------------------------
        for index in range(len(current)):
            while True:
                for narrower in _narrowings(current[index]):
                    candidate = list(current)
                    candidate[index] = narrower
                    if attempt(candidate):
                        current = candidate
                        improved = True
                        break
                else:
                    break
    return current, budget.spent
