"""``repro.explore`` — the deterministic fault-schedule explorer.

A simulation-testing subsystem in the TigerBeetle-VOPR / Jepsen mold,
composed from parts the codebase already owns: the deterministic
:class:`~repro.sim.kernel.Simulator`, forkable
:class:`~repro.sim.rng.RandomStream` seeds, the
:class:`~repro.obs.monitor.MonitorSuite` oracles, and the flight
:class:`~repro.obs.recorder.FlightRecorder`.

    from repro import explore

    result = explore.run("echo", seed=7)       # one seed, full oracles
    assert result.ok, result.violations

    failures = [r for r in explore.sweep("echo", range(200)) if not r.ok]
    small, attempts = explore.shrink_failure(failures[0])
    small.save("echo-seed7.schedule.json")     # the repro script

Surfaces: this API, the ``repro fuzz`` CLI subcommand (sweep / shrink /
replay), and the pytest plugin (``repro.explore.pytest_plugin`` — the
``fuzz`` fixture plus the :func:`schedules` parameterizer).  See
docs/TESTING.md for the workflow.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.explore.driver import ScheduleDriver
from repro.explore.schedule import (
    ADVERSARIAL_PROFILE,
    CRASH_ONLY_PROFILE,
    DEFAULT_PROFILE,
    ELASTIC_ADVERSARIAL_PROFILE,
    ELASTIC_PROFILE,
    Crash,
    CrashDuringTransfer,
    Delay,
    Duplicate,
    FaultAction,
    FaultSchedule,
    Loss,
    Partition,
    PartitionDuringJoin,
    Profile,
    Reorder,
    SCHEDULE_FORMAT,
    digest_of,
    generate,
)
from repro.explore.scenarios import SCENARIOS, Scenario, get_scenario
from repro.explore.shrink import shrink_actions
from repro.sim.kernel import SimulationError

__all__ = [
    "ADVERSARIAL_PROFILE",
    "CRASH_ONLY_PROFILE",
    "DEFAULT_PROFILE",
    "ELASTIC_ADVERSARIAL_PROFILE",
    "ELASTIC_PROFILE",
    "Crash",
    "CrashDuringTransfer",
    "Delay",
    "Duplicate",
    "ExploreResult",
    "FaultAction",
    "FaultSchedule",
    "Loss",
    "Partition",
    "PartitionDuringJoin",
    "Profile",
    "Reorder",
    "SCENARIOS",
    "SCHEDULE_FORMAT",
    "Scenario",
    "ScheduleDriver",
    "digest_of",
    "generate",
    "get_scenario",
    "replay_file",
    "run",
    "schedules",
    "shrink_actions",
    "shrink_failure",
    "sweep",
]


@dataclasses.dataclass
class ExploreResult:
    """One seed's verdict: the schedule it ran, what the workload saw,
    and what the oracles said."""

    scenario: str
    seed: int
    schedule: FaultSchedule
    outcome: Any                      # workload return value, or a marker
    crash: Optional[str]              # "Type: message" when the run died
    violations: List[Any]             # InvariantViolation events
    postmortem: Optional[Dict[str, Any]]
    stats: Dict[str, Any]             # deterministic run statistics
    #: populated on failing runs when ``run(..., artifacts=True)``:
    #: {"openmetrics": <text>, "trace": <chrome trace dict>} — the
    #: snapshots CI uploads next to the repro script.
    artifacts: Optional[Dict[str, Any]] = None
    #: the recorded client-visible operation history (the canonical
    #: ``repro.history/1`` dict), for scenarios that record one; its
    #: digest also rides in ``stats["history_digest"]``, so byte-level
    #: history determinism is part of the run digest contract.
    history: Optional[Dict[str, Any]] = None
    _kwargs: Dict[str, Any] = dataclasses.field(default_factory=dict,
                                                repr=False)

    @property
    def ok(self) -> bool:
        return not self.violations and self.crash is None

    def invariants(self) -> List[str]:
        """The violated invariant slugs, sorted and deduplicated."""
        return sorted({v.invariant for v in self.violations})

    def digest(self) -> str:
        """A stable hash of everything deterministic about the run:
        the schedule, the workload outcome, the oracle verdicts, and the
        network/driver statistics.  Two runs of the same seed — in
        different processes, on different machines — produce the same
        digest; that is the determinism contract ``repro fuzz`` checks
        in CI."""
        return digest_of({
            "scenario": self.scenario,
            "seed": self.seed,
            "schedule": self.schedule.to_dict(),
            "outcome": self.outcome,
            "crash": self.crash,
            "invariants": [(v.invariant, round(v.t, 6))
                           for v in self.violations],
            "stats": self.stats,
        })

    def summary(self) -> str:
        if self.ok:
            return "seed %d ok (%d actions)" % (
                self.seed, len(self.schedule.actions))
        what = ", ".join(self.invariants()) or "crash"
        return "seed %d FAILED: %s (%d actions)" % (
            self.seed, what, len(self.schedule.actions))


def run(scenario, seed: int, *,
        schedule: Optional[FaultSchedule] = None,
        budget: Optional[float] = None,
        oracles: Optional[Sequence[str]] = None,
        monitors: Optional[Sequence] = None,
        capacity: int = 4096,
        artifacts: bool = False) -> ExploreResult:
    """Execute one scenario under one fault schedule, oracles watching.

    ``scenario`` is a name from :data:`SCENARIOS` or a
    :class:`Scenario`.  Without an explicit ``schedule`` the seed derives
    one (``generate``).  ``oracles`` selects monitors by invariant slug;
    ``monitors`` passes monitor classes/instances directly and wins over
    ``oracles``; by default every monitor runs.  ``budget`` caps virtual
    time — a workload still unfinished then is recorded as
    ``"budget-exhausted"``, not a crash.

    Runs are call-traced (``watch(trace=True)``) so failure post-mortems
    embed each violating call's critical-path stage breakdown; bus
    subscribers never touch the simulation, so digests and stats are
    unchanged.  ``artifacts=True`` additionally attaches the metrics and
    time-series collectors and, on failure, stores an OpenMetrics
    snapshot plus the Chrome trace on the result for CI upload.
    """
    import contextlib

    from repro.obs.monitor import monitors_for, watch

    scn = scenario if isinstance(scenario, Scenario) \
        else get_scenario(scenario)
    built = scn.build(seed)
    world = built.world
    if schedule is None:
        schedule = generate(seed, built.fault_machines, scn.horizon,
                            scn.profile, scenario=scn.name)
    if monitors is None:
        if oracles is None:
            oracles = scn.oracles
        if oracles is not None:
            monitors = monitors_for(oracles)
    # History-checked scenarios get a fresh HistoryOracle per run (it is
    # bound to this build's recorder, so it must NOT go into _kwargs —
    # a shrinking rerun builds its own); it rides with the monitors so a
    # failed check reports through the same violation machinery.
    oracle = None
    active_monitors = monitors
    if built.history is not None and scn.checker:
        from repro.obs.lincheck import HistoryOracle
        from repro.obs.monitor import DEFAULT_MONITORS
        oracle = HistoryOracle(built.history, scn.checker)
        active_monitors = list(DEFAULT_MONITORS if monitors is None
                               else monitors) + [oracle]
    driver = ScheduleDriver(world.sim, world.machines, world.net, schedule)
    horizon = budget if budget is not None else scn.budget
    outcome: Any = None
    crash: Optional[str] = None
    collected = None
    with contextlib.ExitStack() as stack:
        if artifacts:
            from repro.obs import MetricsCollector, TimeSeriesCollector
            collected = (
                stack.enter_context(MetricsCollector(world.sim.bus)),
                stack.enter_context(TimeSeriesCollector(world.sim.bus)))
        probe = stack.enter_context(
            watch(world.sim, monitors=active_monitors, capacity=capacity,
                  trace=True))
        # The post-mortem carries the offending schedule, so a dumped
        # report is replayable on its own (save the "schedule" object to
        # a file and `repro fuzz --replay` it).
        probe.recorder.context = {
            "scenario": scn.name,
            "seed": seed,
            "schedule": schedule.to_dict(),
        }
        driver.start()
        try:
            outcome = world.run(built.body(), name="explore-workload",
                                until=horizon)
        except SimulationError as exc:
            if "did not finish" in str(exc):
                outcome = "budget-exhausted"
            else:
                crash = "%s: %s" % (type(exc).__name__, exc)
                probe.recorder.record_crash(exc, t=world.sim.now)
        except Exception as exc:
            crash = "%s: %s" % (type(exc).__name__, exc)
            probe.recorder.record_crash(exc, t=world.sim.now)
        driver.stop()
        history_dict = None
        if built.history is not None:
            # Finalize (and, when the scenario names a checker, check)
            # the operation history while the bus is still watched, so a
            # consistency violation lands in the flight recorder too.
            if oracle is not None:
                oracle.check(world.sim.now)
            else:
                built.history.finalize()
            history_dict = built.history.history().to_dict()
        violations = probe.violations
        stats = {
            "virtual_end": round(world.sim.now, 6),
            "packets_sent": world.net.packets_sent,
            "packets_delivered": world.net.packets_delivered,
            "packets_dropped": world.net.packets_dropped,
            "packets_duplicated": world.net.packets_duplicated,
            "machine_failures": driver.total_failures,
            "machine_repairs": driver.total_repairs,
            "faults_applied": [desc for _t, desc in driver.applied],
        }
        if history_dict is not None:
            stats["history_ops"] = len(history_dict["ops"])
            stats["history_digest"] = digest_of(history_dict)
        postmortem = probe.postmortem() if (violations or crash) else None
        if postmortem is not None and oracle is not None \
                and oracle.result is not None:
            postmortem["lincheck"] = oracle.result.to_dict()
        failed_artifacts = None
        if collected is not None and (violations or crash):
            from repro.obs import openmetrics
            metrics_collector, ts_collector = collected
            failed_artifacts = {
                "openmetrics": openmetrics(
                    metrics_collector.registry,
                    timeseries=ts_collector.registry,
                    critpath=probe.critpath),
                "trace": probe.tracer.to_chrome(),
            }
    return ExploreResult(
        scenario=scn.name, seed=seed, schedule=schedule, outcome=outcome,
        crash=crash, violations=list(violations), postmortem=postmortem,
        stats=stats, artifacts=failed_artifacts, history=history_dict,
        _kwargs=dict(budget=budget, oracles=oracles, monitors=monitors,
                     capacity=capacity))


def sweep(scenario, seeds: Iterable[int],
          progress=None, **kwargs) -> List[ExploreResult]:
    """Run many seeds; returns every result (``.ok`` filters).

    Progress is published per seed through ``progress`` (default: the
    shared :data:`repro.obs.export.PROGRESS` channel), so a concurrent
    ``repro top`` — or any listener — can watch the sweep advance.
    """
    if progress is None:
        from repro.obs.export import PROGRESS as progress
    seeds = list(seeds)
    name = scenario.name if isinstance(scenario, Scenario) else str(scenario)
    task = "fuzz.%s" % name
    results: List[ExploreResult] = []
    failures = 0
    for seed in seeds:
        result = run(scenario, seed, **kwargs)
        results.append(result)
        failures += 0 if result.ok else 1
        progress.publish(task, done=len(results), total=len(seeds),
                         failures=failures, seed=seed)
    progress.finish(task)
    return results


def _rerun(result: ExploreResult,
           schedule: FaultSchedule) -> ExploreResult:
    return run(result.scenario, result.seed, schedule=schedule,
               **result._kwargs)


def shrink_failure(result: ExploreResult,
                   max_attempts: int = 300,
                   ) -> Tuple[FaultSchedule, int]:
    """Minimize a failing result's schedule; returns ``(schedule,
    attempts)``.  A candidate *reproduces* when it triggers at least one
    of the original failure's invariants (or, for a crash, any crash) —
    every accepted candidate was re-run and observed to still fail, so
    the shrunken schedule is guaranteed violating."""
    if result.ok:
        raise ValueError("cannot shrink a passing result")
    target = set(result.invariants())
    want_crash = result.crash is not None

    def reproduces(actions: List[FaultAction]) -> bool:
        candidate = result.schedule.with_actions(actions)
        rerun = _rerun(result, candidate)
        if want_crash and rerun.crash is not None:
            return True
        return bool(target & set(rerun.invariants()))

    actions, attempts = shrink_actions(result.schedule.actions, reproduces,
                                       max_attempts=max_attempts)
    return result.schedule.with_actions(actions), attempts


def replay_file(path, *, budget: Optional[float] = None,
                oracles: Optional[Sequence[str]] = None,
                monitors: Optional[Sequence] = None) -> ExploreResult:
    """Re-run the schedule stored in a repro file (see
    :meth:`FaultSchedule.save`); the scenario and seed come from the
    file itself."""
    schedule = FaultSchedule.load(path)
    return run(schedule.scenario, schedule.seed, schedule=schedule,
               budget=budget, oracles=oracles, monitors=monitors)


def schedules(n: int = 50, base: int = 0, argname: str = "fault_seed"):
    """Parameterize a pytest test over ``n`` fuzz seeds::

        @explore.schedules(n=50)
        def test_echo_fuzz(fault_seed, fuzz):
            fuzz.check("echo", fault_seed)

    The ``fuzz`` fixture (``repro.explore.pytest_plugin``) runs the seed
    and, on failure, writes the repro script and fails the test with the
    ``repro fuzz --replay`` command line.
    """
    import pytest

    def decorate(fn):
        return pytest.mark.parametrize(argname,
                                       list(range(base, base + n)))(fn)
    return decorate
