"""pytest integration for the fault-schedule explorer.

Registered from the repository-root ``conftest.py``::

    pytest_plugins = ("repro.explore.pytest_plugin",)

provides:

- the ``fuzz`` fixture — run seeds against scenarios; on a violation it
  writes the repro script (and post-mortem) under ``--fuzz-artifacts``
  and fails the test with the exact ``repro fuzz --replay`` command, and
- works with :func:`repro.explore.schedules` to parameterize a test over
  a block of seeds::

      @explore.schedules(n=50)
      def test_echo_fuzz(fault_seed, fuzz):
          fuzz.check("echo", fault_seed)
"""

from __future__ import annotations

import json
import os

import pytest

from repro import explore


def pytest_addoption(parser):
    group = parser.getgroup("fuzz", "fault-schedule explorer")
    group.addoption(
        "--fuzz-artifacts", action="store", default="fuzz-failures",
        metavar="DIR",
        help="directory for repro scripts and post-mortems of failing "
             "fuzz seeds (default: %(default)s)")


class Fuzzer:
    """What the ``fuzz`` fixture yields."""

    def __init__(self, artifacts_dir: str):
        self.artifacts_dir = artifacts_dir

    def run(self, scenario, seed: int, **kwargs) -> "explore.ExploreResult":
        """Run one seed; returns the result without judging it."""
        return explore.run(scenario, seed, **kwargs)

    def check(self, scenario, seed: int, shrink: bool = True,
              shrink_attempts: int = 150,
              **kwargs) -> "explore.ExploreResult":
        """Run one seed and fail the test on any oracle violation or
        crash, after writing the (shrunken) repro script."""
        result = explore.run(scenario, seed, **kwargs)
        if result.ok:
            return result
        schedule = result.schedule
        attempts = 0
        if shrink:
            try:
                schedule, attempts = explore.shrink_failure(
                    result, max_attempts=shrink_attempts)
            except Exception:   # never let the shrinker mask the failure
                schedule = result.schedule
        paths = self.write_artifacts(result, schedule)
        pytest.fail(
            "fuzz seed %d violated %s on scenario %r "
            "(schedule shrunk to %d action(s) in %d re-runs)\n"
            "  repro script: %s\n  post-mortem:  %s\n"
            "  replay with:  repro fuzz --replay %s"
            % (seed, result.invariants() or [result.crash],
               result.scenario, len(schedule.actions), attempts,
               paths["schedule"], paths.get("postmortem", "-"),
               paths["schedule"]))

    def write_artifacts(self, result, schedule=None) -> dict:
        """Write the repro script (+ post-mortem) for a failing result;
        returns their paths."""
        schedule = schedule or result.schedule
        os.makedirs(self.artifacts_dir, exist_ok=True)
        stem = os.path.join(self.artifacts_dir,
                            "%s-seed%d" % (result.scenario, result.seed))
        paths = {"schedule": stem + ".schedule.json"}
        schedule.save(paths["schedule"])
        if result.postmortem is not None:
            paths["postmortem"] = stem + ".postmortem.json"
            with open(paths["postmortem"], "w") as fh:
                json.dump(result.postmortem, fh, indent=2)
                fh.write("\n")
        return paths


@pytest.fixture
def fuzz(request) -> Fuzzer:
    """The fault-schedule explorer, wired to ``--fuzz-artifacts``."""
    return Fuzzer(str(request.config.getoption("--fuzz-artifacts")))
