"""The scenario catalog: workloads the fault explorer drives.

A :class:`Scenario` bundles a workload factory with the knobs the
explorer needs: how many machines the world has, which machines the
fault schedule may target (the *servers* — the client stays a reliable
observer, Jepsen-style, so verdicts are about the system, not about a
dead tester), the schedule horizon, and the virtual-time budget after
which a stuck run is abandoned.

Every workload must terminate under arbitrary fault schedules: expected
fault outcomes (:class:`~repro.core.TroupeFailure`,
:class:`~repro.pairedmsg.PeerCrashed`, ...) are caught and recorded as
outcome strings; only *unexpected* exceptions escape, and the explorer
reports those as crashes.  Outcome strings must be deterministic and
process-independent (no troupe IDs, no object reprs) — they feed the run
digest.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from repro.explore.schedule import (
    ADVERSARIAL_PROFILE,
    DEFAULT_PROFILE,
    Profile,
)
from repro.harness import World
from repro.net.network import NetworkConfig
from repro.sim.rng import RandomStream


@dataclasses.dataclass
class ScenarioRun:
    """What a scenario factory returns: a built world, a workload
    generator factory, and the machine names faults may target."""

    world: World
    body: Callable[[], object]
    fault_machines: List[str]


@dataclasses.dataclass(frozen=True)
class Scenario:
    name: str
    description: str
    horizon: float          # schedule generation window (virtual ms)
    budget: float           # abandon the run at this virtual time
    profile: Profile
    factory: Callable[[int], ScenarioRun]
    #: default oracle slugs for this scenario (None = the full suite).
    #: Scenarios whose profiles produce partitions exclude
    #: ``troupe-determinism`` by default: a partition can make a client
    #: falsely declare a live member crashed (§4.2.3), after which that
    #: member legitimately misses calls — the §4.3.5 hazard the paper
    #: resolves by reconfiguration, which these workloads don't run.
    #: Pass ``oracles=``/``monitors=`` to :func:`repro.explore.run` to
    #: opt back in.
    oracles: Optional[Tuple[str, ...]] = None

    def build(self, seed: int) -> ScenarioRun:
        return self.factory(seed)


def _echo_module():
    from repro.core import ExportedModule

    def echo(ctx, args):
        yield from ctx.compute(1.0)
        return b"echo:" + args

    return ExportedModule("echo", {0: echo})


def _make_echo(seed: int, degree: int = 3,
               net_config: Optional[NetworkConfig] = None) -> ScenarioRun:
    """A ``degree``-member echo troupe answering a client's replicated
    calls; the workload length and pacing are themselves seed-derived
    (the client-workload knob of the schedule)."""
    from repro.core import ReplicatedCallError

    world = World(machines=degree + 2, seed=seed, net_config=net_config)
    troupe, _runtimes = world.make_troupe("echo-svc", _echo_module,
                                          degree=degree)
    servers = sorted({m.process.host for m in troupe.members})
    client = world.make_client()
    rng = RandomStream(seed, "explore-workload")
    calls = rng.randint(6, 14)
    gaps = [round(rng.uniform(0.0, 250.0), 3) for _ in range(calls)]

    def body():
        from repro.sim.kernel import Sleep

        outcomes = []
        for i in range(calls):
            if gaps[i] > 0:
                yield Sleep(gaps[i])
            payload = b"ping-%d" % i
            try:
                reply = yield from client.call_troupe(troupe, 0, 0, payload)
            except ReplicatedCallError as exc:
                outcomes.append("call-%d:%s" % (i, type(exc).__name__))
            else:
                ok = reply == b"echo:" + payload
                outcomes.append("call-%d:%s" % (i, "ok" if ok else
                                                "WRONG-REPLY"))
        return outcomes

    return ScenarioRun(world=world, body=body, fault_machines=servers)


def _make_pairs(seed: int) -> ScenarioRun:
    """Two paired-message endpoints exchanging seed-sized calls — the
    §4.2 protocol fuzzed below the RPC layer."""
    from repro.host.machine import MachineCrashed
    from repro.pairedmsg import (
        PairedEndpoint,
        PairedMessageConfig,
        PeerCrashed,
        SendTimeout,
    )

    world = World(machines=3, seed=seed)
    client_m, server_m = world.machines[0], world.machines[1]
    config = PairedMessageConfig(max_segment_data=256,
                                 retransmit_interval=25.0,
                                 crash_timeout=600.0,
                                 probe_interval=100.0)
    client = PairedEndpoint(client_m.spawn_process("pm-client"),
                            config=config)
    server_proc = server_m.spawn_process("pm-server")
    server = PairedEndpoint(server_proc, port=500, config=config)

    def serve():
        while True:
            msg = yield from server.next_call()
            yield from server.send_return(msg.peer, msg.call_number,
                                          b"r:" + msg.data)

    server_proc.spawn(serve(), daemon=True)
    rng = RandomStream(seed, "explore-workload")
    sizes = [rng.randint(0, 2048) for _ in range(rng.randint(3, 8))]

    def body():
        from repro.sim.kernel import Sleep

        outcomes = []
        for number, size in enumerate(sizes, start=1):
            try:
                reply = yield from client.call(server.addr, number,
                                               b"p" * size)
            except (PeerCrashed, SendTimeout, MachineCrashed) as exc:
                outcomes.append("xfer-%d:%s" % (number, type(exc).__name__))
            else:
                ok = reply == b"r:" + b"p" * size
                outcomes.append("xfer-%d:%s" % (number, "ok" if ok else
                                                "WRONG-REPLY"))
        yield Sleep(300.0)   # let stray duplicates drain under the oracles
        return outcomes

    # The server machine only — crashing the client machine would kill
    # the observer, not the system under test.
    return ScenarioRun(world=world, body=body,
                       fault_machines=[server_m.name])


SCENARIOS: Dict[str, Scenario] = {}


def _register(scenario: Scenario) -> Scenario:
    SCENARIOS[scenario.name] = scenario
    return scenario


#: the oracles that must hold under *every* fault schedule (see
#: :class:`Scenario.oracles` for why troupe-determinism is opt-in).
UNCONDITIONAL_ORACLES = (
    "exactly-once",
    "collation-completeness",
    "commit-unanimity",
    "crash-silence",
    "incarnation-monotonic",
)

_register(Scenario(
    name="echo",
    description="3-member echo troupe, replicated calls from one client",
    horizon=2500.0, budget=30000.0, profile=DEFAULT_PROFILE,
    factory=lambda seed: _make_echo(seed),
    oracles=UNCONDITIONAL_ORACLES))

_register(Scenario(
    name="echo-adversarial",
    description="echo troupe under dense, correlated fault schedules",
    horizon=2500.0, budget=40000.0, profile=ADVERSARIAL_PROFILE,
    factory=lambda seed: _make_echo(seed),
    oracles=UNCONDITIONAL_ORACLES))

_register(Scenario(
    name="lossy-echo",
    description="echo troupe over a baseline-lossy wire plus scheduled "
                "faults",
    horizon=2500.0, budget=40000.0, profile=DEFAULT_PROFILE,
    factory=lambda seed: _make_echo(seed, net_config=NetworkConfig(
        loss_probability=0.05, duplicate_probability=0.02)),
    oracles=UNCONDITIONAL_ORACLES))

_register(Scenario(
    name="pairs",
    description="raw paired-message exchanges (the §4.2 layer, below RPC)",
    horizon=2000.0, budget=30000.0, profile=DEFAULT_PROFILE,
    factory=_make_pairs))


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError("unknown scenario %r (choose from: %s)"
                       % (name, ", ".join(sorted(SCENARIOS))))
