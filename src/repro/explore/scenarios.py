"""The scenario catalog: workloads the fault explorer drives.

A :class:`Scenario` bundles a workload factory with the knobs the
explorer needs: how many machines the world has, which machines the
fault schedule may target (the *servers* — the client stays a reliable
observer, Jepsen-style, so verdicts are about the system, not about a
dead tester), the schedule horizon, and the virtual-time budget after
which a stuck run is abandoned.

Every workload must terminate under arbitrary fault schedules: expected
fault outcomes (:class:`~repro.core.TroupeFailure`,
:class:`~repro.pairedmsg.PeerCrashed`, ...) are caught and recorded as
outcome strings; only *unexpected* exceptions escape, and the explorer
reports those as crashes.  Outcome strings must be deterministic and
process-independent (no troupe IDs, no object reprs) — they feed the run
digest.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from repro.explore.schedule import (
    ADVERSARIAL_PROFILE,
    DEFAULT_PROFILE,
    ELASTIC_ADVERSARIAL_PROFILE,
    ELASTIC_PROFILE,
    Profile,
)
from repro.harness import World
from repro.net.network import NetworkConfig
from repro.sim.rng import RandomStream


@dataclasses.dataclass
class ScenarioRun:
    """What a scenario factory returns: a built world, a workload
    generator factory, and the machine names faults may target."""

    world: World
    body: Callable[[], object]
    fault_machines: List[str]
    #: an :class:`~repro.obs.history.OperationHistoryRecorder` when the
    #: workload records a client-visible operation history; the explorer
    #: finalizes it and runs the scenario's offline ``checker`` on it.
    history: Optional[object] = None


@dataclasses.dataclass(frozen=True)
class Scenario:
    name: str
    description: str
    horizon: float          # schedule generation window (virtual ms)
    budget: float           # abandon the run at this virtual time
    profile: Profile
    factory: Callable[[int], ScenarioRun]
    #: default oracle slugs for this scenario (None = the full suite).
    #: Scenarios whose profiles produce partitions exclude
    #: ``troupe-determinism`` by default: a partition can make a client
    #: falsely declare a live member crashed (§4.2.3), after which that
    #: member legitimately misses calls — the §4.3.5 hazard the paper
    #: resolves by reconfiguration, which these workloads don't run.
    #: Pass ``oracles=``/``monitors=`` to :func:`repro.explore.run` to
    #: opt back in.
    oracles: Optional[Tuple[str, ...]] = None
    #: offline checker semantics (:data:`repro.obs.lincheck.SEMANTICS`)
    #: applied to the recorded history after the run; requires the
    #: factory to populate :attr:`ScenarioRun.history`.
    checker: Optional[str] = None

    def build(self, seed: int) -> ScenarioRun:
        return self.factory(seed)


def _echo_module():
    from repro.core import ExportedModule

    def echo(ctx, args):
        yield from ctx.compute(1.0)
        return b"echo:" + args

    return ExportedModule("echo", {0: echo})


def _make_echo(seed: int, degree: int = 3,
               net_config: Optional[NetworkConfig] = None) -> ScenarioRun:
    """A ``degree``-member echo troupe answering a client's replicated
    calls; the workload length and pacing are themselves seed-derived
    (the client-workload knob of the schedule)."""
    from repro.core import ReplicatedCallError

    world = World(machines=degree + 2, seed=seed, net_config=net_config)
    troupe, _runtimes = world.make_troupe("echo-svc", _echo_module,
                                          degree=degree)
    servers = sorted({m.process.host for m in troupe.members})
    client = world.make_client()
    rng = RandomStream(seed, "explore-workload")
    calls = rng.randint(6, 14)
    gaps = [round(rng.uniform(0.0, 250.0), 3) for _ in range(calls)]

    def body():
        from repro.sim.kernel import Sleep

        outcomes = []
        for i in range(calls):
            if gaps[i] > 0:
                yield Sleep(gaps[i])
            payload = b"ping-%d" % i
            try:
                reply = yield from client.call_troupe(troupe, 0, 0, payload)
            except ReplicatedCallError as exc:
                outcomes.append("call-%d:%s" % (i, type(exc).__name__))
            else:
                ok = reply == b"echo:" + payload
                outcomes.append("call-%d:%s" % (i, "ok" if ok else
                                                "WRONG-REPLY"))
        return outcomes

    return ScenarioRun(world=world, body=body, fault_machines=servers)


def _make_pairs(seed: int) -> ScenarioRun:
    """Two paired-message endpoints exchanging seed-sized calls — the
    §4.2 protocol fuzzed below the RPC layer."""
    from repro.host.machine import MachineCrashed
    from repro.pairedmsg import (
        PairedEndpoint,
        PairedMessageConfig,
        PeerCrashed,
        SendTimeout,
    )

    world = World(machines=3, seed=seed)
    client_m, server_m = world.machines[0], world.machines[1]
    config = PairedMessageConfig(max_segment_data=256,
                                 retransmit_interval=25.0,
                                 crash_timeout=600.0,
                                 probe_interval=100.0)
    client = PairedEndpoint(client_m.spawn_process("pm-client"),
                            config=config)
    server_proc = server_m.spawn_process("pm-server")
    server = PairedEndpoint(server_proc, port=500, config=config)

    def serve():
        while True:
            msg = yield from server.next_call()
            yield from server.send_return(msg.peer, msg.call_number,
                                          b"r:" + msg.data)

    server_proc.spawn(serve(), daemon=True)
    rng = RandomStream(seed, "explore-workload")
    sizes = [rng.randint(0, 2048) for _ in range(rng.randint(3, 8))]

    def body():
        from repro.sim.kernel import Sleep

        outcomes = []
        for number, size in enumerate(sizes, start=1):
            try:
                reply = yield from client.call(server.addr, number,
                                               b"p" * size)
            except (PeerCrashed, SendTimeout, MachineCrashed) as exc:
                outcomes.append("xfer-%d:%s" % (number, type(exc).__name__))
            else:
                ok = reply == b"r:" + b"p" * size
                outcomes.append("xfer-%d:%s" % (number, "ok" if ok else
                                                "WRONG-REPLY"))
        yield Sleep(300.0)   # let stray duplicates drain under the oracles
        return outcomes

    # The server machine only — crashing the client machine would kill
    # the observer, not the system under test.
    return ScenarioRun(world=world, body=body,
                       fault_machines=[server_m.name])


# ---------------------------------------------------------------------------
# Transactional-store scenarios (history-checked)
#
# High-contention workloads over a replicated TransactionalStore under
# the §5.3 troupe commit protocol.  Every client call is recorded as a
# client-visible operation (repro.obs.history); after the run the
# explorer feeds the history to the offline checker named by
# ``Scenario.checker`` — the oracle that can falsify the paper's §5
# claim that replica divergence surfaces as deadlock/unavailability,
# never as inconsistent data.


def _store_troupe(world: World, name: str, degree: int, build_procs,
                  initial=None, divergence_bug: bool = False):
    """A ``degree``-member transactional-store troupe on the world's
    first ``degree`` machines.  Built by hand (not ``make_troupe``)
    because each member owns per-replica state: its own
    TransactionManager + TransactionalStore + CommitParticipant, which
    ``build_procs(participant, store, index)`` wires into a fresh
    ExportedModule.

    ``divergence_bug`` plants the §5 bug the checker exists to catch:
    the last member acknowledges commits but never applies them to its
    global state — a silently diverging replica.
    """
    from repro.core import TroupeDescriptor, TroupeRuntime, new_troupe_id
    from repro.core.runtime import RuntimeConfig
    from repro.transactions import (CommitParticipant, TransactionManager,
                                    TransactionalStore)

    machines = world.machines[:degree]
    troupe_id = new_troupe_id()
    members = []
    for index, machine in enumerate(machines):
        process = machine.spawn_process(name)
        runtime = TroupeRuntime(
            process, config=RuntimeConfig(execution="parallel"),
            resolver=world.resolver, troupe_id=troupe_id)
        manager = TransactionManager(world.sim)
        store = TransactionalStore(manager, initial=dict(initial or {}))
        if divergence_bug and index == degree - 1:
            store._apply_to_global = lambda writes: None
        participant = CommitParticipant(runtime, manager, store)
        members.append(runtime.export(build_procs(participant, store,
                                                  index)))
        runtime.start_server()
        world.runtimes.append(runtime)
    descriptor = TroupeDescriptor(name, troupe_id, tuple(members))
    world.register(descriptor)
    return descriptor


def _txn_client(world: World, machine_name: str):
    """An unreplicated client runtime with the commit coordinator
    exported as module 0 (the §5.3 convention)."""
    from repro.transactions import CommitCoordinator

    runtime = world.make_client(machine_name=machine_name)
    CommitCoordinator(runtime)
    return runtime


def _guarded_txn_call(runtime, troupe, procedure, payload, hclient, op,
                      outcomes, tag, collator=None):
    """One recorded attempt at a transactional troupe call.  Returns
    ``("ok", reply)``, ``("aborted", None)`` (clean §5.3 abort — the
    operation definitely did not take effect) or ``("info", None)``
    (troupe failure / collation error / other remote error — unknown
    whether it took effect)."""
    from repro.core import CollationError, ReplicatedCallError
    from repro.rpc import RemoteError
    from repro.transactions.commit import TXN_ABORTED_ERROR

    try:
        reply = yield from runtime.call_troupe(troupe, 0, procedure,
                                               payload, collator=collator)
    except RemoteError as exc:
        if exc.kind == TXN_ABORTED_ERROR:
            hclient.fail(op)
            outcomes.append("%s:aborted" % tag)
            return ("aborted", None)
        hclient.info(op)
        outcomes.append("%s:remote-%s" % (tag, exc.kind))
        return ("info", None)
    except (ReplicatedCallError, CollationError) as exc:
        hclient.info(op)
        outcomes.append("%s:%s" % (tag, type(exc).__name__))
        return ("info", None)
    outcomes.append("%s:ok" % tag)
    return ("ok", reply)


def _make_register(seed: int, degree: int = 3, clients: int = 2,
                   divergence_bug: bool = False) -> ScenarioRun:
    """Concurrent blind writes and reads on two replicated registers.

    Every write runs as a §5.3 transaction; reads collate unanimously
    (so live divergence surfaces as a CollationError, per the paper)
    unless ``divergence_bug`` — then reads take the fastest member
    (FirstComeCollator, §4.3.4's speed-over-safety trade) and the
    planted non-applying replica becomes client-visible as stale reads
    the linearizability checker rejects.
    """
    from repro.core import ExportedModule, FirstComeCollator
    from repro.obs.history import OperationHistoryRecorder
    from repro.sim.kernel import Sleep
    from repro.sim.rng import RandomStream
    from repro.transactions import BinaryExponentialBackoff

    READ, WRITE = 0, 1
    world = World(machines=degree + clients, seed=seed)

    def build_procs(participant, store, _index):
        def read(ctx, args):
            def body(txn):
                value = yield from store.read(txn, args)
                return value if value is not None else b""
            return (yield from participant.run_transaction(ctx, body))

        def write(ctx, args):
            key, _, value = args.partition(b"=")

            def body(txn):
                yield from store.write(txn, key, value)
                return b"ok"
            return (yield from participant.run_transaction(ctx, body))

        return ExportedModule("register", {READ: read, WRITE: write})

    troupe = _store_troupe(world, "register", degree, build_procs,
                           divergence_bug=divergence_bug)
    servers = [m.name for m in world.machines[:degree]]
    recorder = OperationHistoryRecorder(
        world.sim,
        scenario="register-divergence" if divergence_bug else "register",
        seed=seed, semantics="register")

    rng = RandomStream(seed, "explore-workload")
    keys = (b"x", b"y")
    plans = []
    for ci in range(clients):
        ops = []
        for k in range(rng.randint(3, 5)):
            key = keys[rng.randint(0, len(keys) - 1)]
            gap = round(rng.uniform(0.0, 120.0), 3)
            if rng.uniform(0.0, 1.0) < 0.6:
                ops.append(("w", key, b"c%d-%d" % (ci, k), gap))
            else:
                ops.append(("r", key, None, gap))
        plans.append(ops)

    outcomes: List[str] = []
    done: List[int] = []

    def make_driver(ci, runtime, hclient):
        backoff = BinaryExponentialBackoff(
            RandomStream(seed, "explore-backoff-%d" % ci),
            initial_mean=60.0)

        def drive():
            for oi, (kind, key, value, gap) in enumerate(plans[ci]):
                if gap > 0:
                    yield Sleep(gap)
                attempts = 0
                while True:
                    tag = "c%d-%d" % (ci, oi)
                    if kind == "w":
                        op = hclient.invoke("w", key=key.decode(),
                                            args=value.decode())
                        status, reply = yield from _guarded_txn_call(
                            runtime, troupe, WRITE, key + b"=" + value,
                            hclient, op, outcomes, tag)
                    else:
                        op = hclient.invoke("r", key=key.decode())
                        collator = (FirstComeCollator()
                                    if divergence_bug else None)
                        status, reply = yield from _guarded_txn_call(
                            runtime, troupe, READ, key, hclient, op,
                            outcomes, tag, collator=collator)
                    if status == "ok":
                        hclient.ok(op, "ok" if kind == "w" else
                                   (None if reply == b"" else
                                    reply.decode()))
                        break
                    if status == "aborted" and attempts < 3:
                        attempts += 1
                        yield Sleep(backoff.next_delay())
                        continue
                    break
            done.append(ci)
        return drive

    drivers = []
    for ci in range(clients):
        runtime = _txn_client(world, world.machines[degree + ci].name)
        drivers.append(make_driver(ci, runtime,
                                   recorder.client("c%d" % ci, runtime)))

    def body():
        for ci, drive in enumerate(drivers):
            world.spawn(drive(), name="register-client-%d" % ci)
        while len(done) < clients:
            yield Sleep(50.0)
        yield Sleep(200.0)   # let stray duplicates drain under the oracles
        return sorted(outcomes)

    return ScenarioRun(world=world, body=body, fault_machines=servers,
                       history=recorder)


def _make_bank(seed: int, degree: int = 3, clients: int = 2) -> ScenarioRun:
    """Concurrent transfers between three replicated accounts, checked
    for strict serializability.

    Each account holds a *versioned cell* ``balance@opid``; a transfer
    reads both cells, sleeps inside the transaction to widen the
    conflict window, and writes uniquely tagged successor cells.  Every
    committed transaction returns exactly the versions it read and
    wrote, which is all the serialization-graph checker needs.
    """
    import json as _json

    from repro.core import ExportedModule
    from repro.obs.history import OperationHistoryRecorder
    from repro.sim.kernel import Sleep
    from repro.sim.rng import RandomStream
    from repro.transactions import BinaryExponentialBackoff

    XFER, AUDIT = 0, 1
    accounts = (b"a", b"b", b"c")
    initial = {key: b"100@init" for key in accounts}
    world = World(machines=degree + clients + 1, seed=seed)

    def build_procs(participant, store, _index):
        def xfer(ctx, args):
            head, _, opid = args.rpartition(b":")
            pair, _, amount_raw = head.rpartition(b":")
            src, _, dst = pair.partition(b">")
            amount = int(amount_raw)

            def body(txn):
                cells = {}
                for key in sorted((src, dst)):
                    cells[key] = yield from store.read(txn, key)
                yield Sleep(1.0)   # widen the conflict window
                balances = {key: int(cell.split(b"@", 1)[0])
                            for key, cell in cells.items()}
                writes = {}
                if balances[src] >= amount:
                    writes[src] = b"%d@%s/s" % (balances[src] - amount,
                                                opid)
                    writes[dst] = b"%d@%s/d" % (balances[dst] + amount,
                                                opid)
                    for key in sorted(writes):
                        yield from store.write(txn, key, writes[key])
                return _json.dumps(
                    {"reads": {k.decode(): cells[k].decode()
                               for k in cells},
                     "writes": {k.decode(): writes[k].decode()
                                for k in writes}},
                    sort_keys=True).encode()
            return (yield from participant.run_transaction(ctx, body))

        def audit(ctx, _args):
            def body(txn):
                cells = {}
                for key in accounts:
                    cells[key] = yield from store.read(txn, key)
                return _json.dumps(
                    {"reads": {k.decode(): cells[k].decode()
                               for k in cells},
                     "writes": {}},
                    sort_keys=True).encode()
            return (yield from participant.run_transaction(ctx, body))

        return ExportedModule("bank", {XFER: xfer, AUDIT: audit})

    troupe = _store_troupe(world, "bank", degree, build_procs,
                           initial=initial)
    servers = [m.name for m in world.machines[:degree]]
    recorder = OperationHistoryRecorder(
        world.sim, scenario="bank-transfer", seed=seed, semantics="bank",
        initial={key.decode(): cell.decode()
                 for key, cell in initial.items()})

    rng = RandomStream(seed, "explore-workload")
    plans = []
    for ci in range(clients):
        ops = []
        for _k in range(rng.randint(2, 4)):
            src = accounts[rng.randint(0, 2)]
            dst = accounts[(accounts.index(src)
                            + rng.randint(1, 2)) % len(accounts)]
            ops.append((src, dst, rng.randint(5, 40),
                        round(rng.uniform(0.0, 100.0), 3)))
        plans.append(ops)

    outcomes: List[str] = []
    done: List[int] = []

    def decode_reply(reply):
        return _json.loads(reply.decode())

    def make_driver(ci, runtime, hclient):
        backoff = BinaryExponentialBackoff(
            RandomStream(seed, "explore-backoff-%d" % ci),
            initial_mean=60.0)

        def drive():
            for oi, (src, dst, amount, gap) in enumerate(plans[ci]):
                if gap > 0:
                    yield Sleep(gap)
                attempts = 0
                while True:
                    # version tags must stay unique across retries of an
                    # unknown-outcome attempt, hence the attempt suffix
                    opid = b"c%d-%d.%d" % (ci, oi, attempts)
                    payload = b"%s>%s:%d:%s" % (src, dst, amount, opid)
                    op = hclient.invoke(
                        "xfer", args="%s>%s:%d" % (src.decode(),
                                                   dst.decode(), amount))
                    status, reply = yield from _guarded_txn_call(
                        runtime, troupe, XFER, payload, hclient, op,
                        outcomes, "c%d-%d" % (ci, oi))
                    if status == "ok":
                        hclient.ok(op, decode_reply(reply))
                        break
                    if status == "aborted" and attempts < 3:
                        attempts += 1
                        yield Sleep(backoff.next_delay())
                        continue
                    break
            done.append(ci)
        return drive

    drivers = []
    for ci in range(clients):
        runtime = _txn_client(world, world.machines[degree + ci].name)
        drivers.append(make_driver(ci, runtime,
                                   recorder.client("c%d" % ci, runtime)))
    auditor_rt = _txn_client(world, world.machines[degree + clients].name)
    auditor = recorder.client("auditor", auditor_rt)

    def body():
        for ci, drive in enumerate(drivers):
            world.spawn(drive(), name="bank-client-%d" % ci)
        while len(done) < clients:
            yield Sleep(50.0)
        op = auditor.invoke("audit")
        status, reply = yield from _guarded_txn_call(
            auditor_rt, troupe, AUDIT, b"", auditor, op, outcomes,
            "audit")
        if status == "ok":
            auditor.ok(op, decode_reply(reply))
        yield Sleep(200.0)
        return sorted(outcomes)

    return ScenarioRun(world=world, body=body, fault_machines=servers,
                       history=recorder)


def _make_list_append(seed: int, degree: int = 3,
                      clients: int = 2) -> ScenarioRun:
    """Concurrent appends to one replicated list — the classic
    lost-update hunt: every client hammers the same key, so two
    transactions reading the same list and both committing their append
    would lose one element, which the linearizability checker rejects."""
    from repro.core import ExportedModule
    from repro.obs.history import OperationHistoryRecorder
    from repro.sim.kernel import Sleep
    from repro.sim.rng import RandomStream
    from repro.transactions import BinaryExponentialBackoff

    APPEND, READ = 0, 1
    KEY = b"log"
    world = World(machines=degree + clients, seed=seed)

    def build_procs(participant, store, _index):
        def append(ctx, args):
            def body(txn):
                value = yield from store.read(txn, KEY)
                yield Sleep(1.0)   # widen the conflict window
                new = args if not value else value + b"," + args
                yield from store.write(txn, KEY, new)
                return b"ok"
            return (yield from participant.run_transaction(ctx, body))

        def read(ctx, _args):
            def body(txn):
                value = yield from store.read(txn, KEY)
                return value if value is not None else b""
            return (yield from participant.run_transaction(ctx, body))

        return ExportedModule("list", {APPEND: append, READ: read})

    troupe = _store_troupe(world, "list", degree, build_procs)
    servers = [m.name for m in world.machines[:degree]]
    recorder = OperationHistoryRecorder(
        world.sim, scenario="list-append", seed=seed,
        semantics="list-append")

    rng = RandomStream(seed, "explore-workload")
    plans = []
    for ci in range(clients):
        ops = []
        for k in range(rng.randint(3, 5)):
            gap = round(rng.uniform(0.0, 80.0), 3)
            if rng.uniform(0.0, 1.0) < 0.7:
                ops.append(("append", b"c%d-%d" % (ci, k), gap))
            else:
                ops.append(("r", None, gap))
        plans.append(ops)

    outcomes: List[str] = []
    done: List[int] = []

    def make_driver(ci, runtime, hclient):
        backoff = BinaryExponentialBackoff(
            RandomStream(seed, "explore-backoff-%d" % ci),
            initial_mean=60.0)

        def drive():
            for oi, (kind, token, gap) in enumerate(plans[ci]):
                if gap > 0:
                    yield Sleep(gap)
                attempts = 0
                while True:
                    tag = "c%d-%d" % (ci, oi)
                    if kind == "append":
                        op = hclient.invoke("append", key=KEY.decode(),
                                            args=token.decode())
                        status, reply = yield from _guarded_txn_call(
                            runtime, troupe, APPEND, token, hclient, op,
                            outcomes, tag)
                        if status == "ok":
                            hclient.ok(op, "ok")
                    else:
                        op = hclient.invoke("r", key=KEY.decode())
                        status, reply = yield from _guarded_txn_call(
                            runtime, troupe, READ, b"", hclient, op,
                            outcomes, tag)
                        if status == "ok":
                            hclient.ok(op, [] if reply == b"" else
                                       reply.decode().split(","))
                    if status == "aborted" and attempts < 3:
                        attempts += 1
                        yield Sleep(backoff.next_delay())
                        continue
                    break
            done.append(ci)
        return drive

    drivers = []
    for ci in range(clients):
        runtime = _txn_client(world, world.machines[degree + ci].name)
        drivers.append(make_driver(ci, runtime,
                                   recorder.client("c%d" % ci, runtime)))

    def body():
        for ci, drive in enumerate(drivers):
            world.spawn(drive(), name="list-client-%d" % ci)
        while len(done) < clients:
            yield Sleep(50.0)
        yield Sleep(200.0)
        return sorted(outcomes)

    return ScenarioRun(world=world, body=body, fault_machines=servers,
                       history=recorder)


# ---------------------------------------------------------------------------
# Elastic scenarios: reconfiguration under fire (§6.4.1 + ROADMAP item 5)
#
# A TroupeAutoscaler (repro.elastic) grows and shrinks a replicated
# register troupe while clients read and write it.  The workload is
# shaped so membership changes happen even on fault-free seeds — a
# concurrent read burst forces a load-grow, the quiet tail a shrink —
# which keeps the bus full of the bind.get_state / bind.member events
# the reconfiguration-aware fault kinds (crash-during-transfer,
# partition-during-join) arm on.  Crashed members are swept and
# repaired machines re-join, so a fault mid-transfer begets *another*
# membership change for the next armed fault to hit.


def _elastic_register_module():
    """A fresh replicated register with §6.4.1 state transfer."""
    from repro.binding import ReplaceableModule

    state: Dict[bytes, bytes] = {}

    def read(ctx, args):
        return state.get(args, b"")

    def write(ctx, args):
        key, _, value = args.partition(b"=")
        state[key] = value
        return b"ok"

    def externalize():
        return b";".join(k + b"=" + state[k] for k in sorted(state))

    def internalize(raw):
        state.clear()
        for pair in raw.split(b";"):
            if pair:
                key, _, value = pair.partition(b"=")
                state[key] = value

    return ReplaceableModule("elastic-reg", {0: read, 1: write},
                             externalize=externalize,
                             internalize=internalize)


def _make_elastic(seed: int, pool: int = 4, clients: int = 2,
                  scenario_name: str = "elastic") -> ScenarioRun:
    """Autoscaled replicated register under client load.

    The controller and the clients live on reliable machines (``ctl``,
    ``obs``); faults target only the member pool.  Client operations are
    recorded for the offline linearizability check — which here spans
    reconfigurations: an operation can start against one troupe
    incarnation and complete against the next.
    """
    from repro.binding import BindingClient, BindingError, start_ringmaster
    from repro.core import CollationError, ReplicatedCallError
    from repro.core.runtime import StaleBindingError
    from repro.elastic.controller import AutoscalerConfig, TroupeAutoscaler
    from repro.host.machine import MachineCrashed
    from repro.obs.history import OperationHistoryRecorder
    from repro.rpc.messages import RemoteError
    from repro.sim.kernel import Sleep

    READ, WRITE = 0, 1
    NAME = "elastic-reg"
    names = ["ctl", "obs"] + ["pool%d" % i for i in range(pool)]
    world = World(machines=len(names), seed=seed, machine_names=names)
    ringmaster, _rm = start_ringmaster([world.machine("ctl")])
    controller_rt = world.make_client(machine_name="ctl")
    controller_binding = BindingClient(controller_rt, ringmaster)
    autoscaler = TroupeAutoscaler(
        world, controller_rt, controller_binding, NAME,
        _elastic_register_module,
        [world.machine(n) for n in names[2:]],
        config=AutoscalerConfig(interval=120.0, min_members=2,
                                max_members=3, high_depth=2.0,
                                low_depth=1.0, high_latency=70.0,
                                low_latency=30.0))
    recorder = OperationHistoryRecorder(
        world.sim, scenario=scenario_name, seed=seed, semantics="register")

    rng = RandomStream(seed, "explore-workload")
    keys = (b"x", b"y")
    plans = []
    for ci in range(clients):
        ops = []
        for k in range(rng.randint(4, 7)):
            key = keys[rng.randint(0, len(keys) - 1)]
            gap = round(rng.uniform(0.0, 350.0), 3)
            if rng.uniform(0.0, 1.0) < 0.55:
                ops.append(("w", key, b"c%d-%d" % (ci, k), gap))
            else:
                ops.append(("r", key, None, gap))
        plans.append(ops)
    burst_at = round(rng.uniform(250.0, 600.0), 3)
    burst_size = rng.randint(4, 6)

    outcomes: List[str] = []
    done: List[int] = []
    expected = (BindingError, ReplicatedCallError, CollationError,
                RemoteError, StaleBindingError, MachineCrashed)

    def guarded_call(binding, proc, payload, hclient, op, tag):
        try:
            reply = yield from binding.call(NAME, proc, payload)
        except expected as exc:
            if hclient is not None:
                hclient.info(op)   # unknown whether it took effect
            outcomes.append("%s:%s" % (tag, type(exc).__name__))
            return None
        outcomes.append("%s:ok" % tag)
        return reply

    def make_driver(ci, binding, hclient):
        def drive():
            for oi, (kind, key, value, gap) in enumerate(plans[ci]):
                if gap > 0:
                    yield Sleep(gap)
                tag = "c%d-%d" % (ci, oi)
                if kind == "w":
                    op = hclient.invoke("w", key=key.decode(),
                                        args=value.decode())
                    reply = yield from guarded_call(
                        binding, WRITE, key + b"=" + value, hclient, op,
                        tag)
                    if reply is not None:
                        hclient.ok(op, "ok")
                else:
                    op = hclient.invoke("r", key=key.decode())
                    reply = yield from guarded_call(
                        binding, READ, key, hclient, op, tag)
                    if reply is not None:
                        hclient.ok(op, None if reply == b"" else
                                   reply.decode())
            done.append(ci)
        return drive

    drivers = []
    for ci in range(clients):
        runtime = world.make_client(machine_name="obs")
        binding = BindingClient(runtime, ringmaster)
        drivers.append(make_driver(ci, binding,
                                   recorder.client("c%d" % ci, runtime)))
    burst_rt = world.make_client(machine_name="obs")
    burst_binding = BindingClient(burst_rt, ringmaster)

    def burst_reader(bi):
        # unrecorded concurrent reads: they pile up queue depth to
        # force a load-grow, and reads can't perturb the checked history
        yield from guarded_call(burst_binding, READ, keys[0], None, None,
                                "b%d" % bi)

    def setup_step(op, tag):
        try:
            yield from op
        except expected as exc:
            outcomes.append("%s:%s" % (tag, type(exc).__name__))
        else:
            outcomes.append("%s:ok" % tag)

    def body():
        pool_machines = autoscaler.pool
        yield from setup_step(autoscaler.bootstrap(pool_machines[0]),
                              "setup-bootstrap")
        yield from setup_step(autoscaler.join(pool_machines[1]),
                              "setup-join")
        autoscaler.start()
        for ci, drive in enumerate(drivers):
            world.spawn(drive(), name="elastic-client-%d" % ci)
        yield Sleep(burst_at)
        for bi in range(burst_size):
            world.spawn(burst_reader(bi), name="elastic-burst-%d" % bi)
            yield Sleep(5.0)
        while len(done) < clients:
            yield Sleep(50.0)
        yield Sleep(400.0)   # quiet tail: the autoscaler shrinks; stray
        autoscaler.stop()    # duplicates drain under the oracles
        return sorted(outcomes)

    return ScenarioRun(world=world, body=body,
                       fault_machines=names[2:], history=recorder)


SCENARIOS: Dict[str, Scenario] = {}


def _register(scenario: Scenario) -> Scenario:
    SCENARIOS[scenario.name] = scenario
    return scenario


#: the oracles that must hold under *every* fault schedule (see
#: :class:`Scenario.oracles` for why troupe-determinism is opt-in).
UNCONDITIONAL_ORACLES = (
    "exactly-once",
    "collation-completeness",
    "commit-unanimity",
    "crash-silence",
    "incarnation-monotonic",
)

_register(Scenario(
    name="echo",
    description="3-member echo troupe, replicated calls from one client",
    horizon=2500.0, budget=30000.0, profile=DEFAULT_PROFILE,
    factory=lambda seed: _make_echo(seed),
    oracles=UNCONDITIONAL_ORACLES))

_register(Scenario(
    name="echo-adversarial",
    description="echo troupe under dense, correlated fault schedules",
    horizon=2500.0, budget=40000.0, profile=ADVERSARIAL_PROFILE,
    factory=lambda seed: _make_echo(seed),
    oracles=UNCONDITIONAL_ORACLES))

_register(Scenario(
    name="lossy-echo",
    description="echo troupe over a baseline-lossy wire plus scheduled "
                "faults",
    horizon=2500.0, budget=40000.0, profile=DEFAULT_PROFILE,
    factory=lambda seed: _make_echo(seed, net_config=NetworkConfig(
        loss_probability=0.05, duplicate_probability=0.02)),
    oracles=UNCONDITIONAL_ORACLES))

_register(Scenario(
    name="pairs",
    description="raw paired-message exchanges (the §4.2 layer, below RPC)",
    horizon=2000.0, budget=30000.0, profile=DEFAULT_PROFILE,
    factory=_make_pairs))

#: oracles for the transactional (history-checked) scenarios.  On top of
#: the :data:`UNCONDITIONAL_ORACLES` exclusions, these also drop
#: ``collation-completeness``: a partition can make one client falsely
#: declare a live store member crashed (§4.2.3), after which that member
#: misses calls and its replica legitimately diverges — a later
#: unanimous read then yields the *sanctioned* disagreement verdict the
#: monitor treats as a breach (§4.3.5, resolved by reconfiguration these
#: workloads don't run).  The offline history checker is the sound
#: replacement: divergence surfacing as an error/unavailability is legal
#: per the paper; divergence surfacing as wrong data fails the check.
TXN_ORACLES = (
    "exactly-once",
    "commit-unanimity",
    "crash-silence",
    "incarnation-monotonic",
)

_register(Scenario(
    name="register",
    description="transactional replicated registers under concurrent "
                "blind writes; oracle: offline linearizability check",
    horizon=2500.0, budget=90000.0, profile=DEFAULT_PROFILE,
    factory=lambda seed: _make_register(seed),
    oracles=TXN_ORACLES, checker="register"))

_register(Scenario(
    name="register-divergence",
    description="the register scenario with a planted silently-diverging "
                "replica and fastest-member reads — the §5 bug the "
                "lincheck oracle exists to catch (validation scenario)",
    horizon=2500.0, budget=90000.0, profile=DEFAULT_PROFILE,
    factory=lambda seed: _make_register(seed, divergence_bug=True),
    oracles=TXN_ORACLES, checker="register"))

_register(Scenario(
    name="bank-transfer",
    description="concurrent transfers between replicated accounts; "
                "oracle: offline strict-serializability check",
    horizon=2500.0, budget=90000.0, profile=DEFAULT_PROFILE,
    factory=lambda seed: _make_bank(seed),
    oracles=TXN_ORACLES, checker="bank"))

_register(Scenario(
    name="elastic",
    description="autoscaled replicated register: membership grows and "
                "shrinks under load while armed faults land mid-transfer; "
                "all six monitors plus the offline linearizability check "
                "run across the membership boundary",
    horizon=3000.0, budget=90000.0, profile=ELASTIC_PROFILE,
    factory=lambda seed: _make_elastic(seed),
    oracles=None, checker="register"))

_register(Scenario(
    name="elastic-adversarial",
    description="the elastic scenario under dense armed fault schedules "
                "(more mid-transfer crashes and mid-join partitions)",
    horizon=3000.0, budget=90000.0, profile=ELASTIC_ADVERSARIAL_PROFILE,
    factory=lambda seed: _make_elastic(
        seed, scenario_name="elastic-adversarial"),
    oracles=None, checker="register"))

_register(Scenario(
    name="list-append",
    description="concurrent appends to one replicated list (lost-update "
                "hunt); oracle: offline linearizability check",
    horizon=2500.0, budget=90000.0, profile=DEFAULT_PROFILE,
    factory=lambda seed: _make_list_append(seed),
    oracles=TXN_ORACLES, checker="list-append"))


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError("unknown scenario %r (choose from: %s)"
                       % (name, ", ".join(sorted(SCENARIOS))))
