"""The schedule driver: inject a :class:`FaultSchedule` into a world.

:class:`ScheduleDriver` extends :class:`repro.host.failures.FailureModel`
— it reuses the model's crash/repair bookkeeping (failure totals,
down-counts, the all-down unavailability integral) but replaces the
exponential draws with the schedule's explicit timeline, walked by a
single ``fault-schedule`` daemon process.  Network actions go through the
:class:`repro.net.network.Network` hooks: ``partition``/``heal`` for
partition windows, :class:`~repro.net.network.LinkFault` install/remove
for loss, duplication, delay, and reordering windows.

Overlapping partition windows nest: the most recently opened window's
grouping is in force; closing it re-installs the next one down (or heals
the network when none remain).

Reconfiguration-aware actions (:class:`CrashDuringTransfer`,
:class:`PartitionDuringJoin`) are *armed* at their ``at`` time and fire
on the next matching membership bus event — ``bind.get_state`` (a member
externalizing state for a joiner) and ``bind.member`` with ``op="add"``
respectively.  Bus handlers run synchronously inside the emitting
process, so the driver never crashes a machine from inside the handler;
it spawns an immediate helper process that performs the crash (and the
later repair / heal) at the same virtual instant.  Whether each armed
action *fired* or *expired* is recorded in the applied-op log, which
feeds the run digest — so two replays of a seed agree not only on the
schedule but on which armed faults actually landed.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.explore.schedule import (
    Crash,
    CrashDuringTransfer,
    Delay,
    Duplicate,
    FaultSchedule,
    Loss,
    Partition,
    PartitionDuringJoin,
    Reorder,
)
from repro.host.failures import FailureModel
from repro.host.machine import Machine
from repro.net.network import LinkFault, Network
from repro.sim.kernel import Simulator, Sleep


class ScheduleDriver(FailureModel):
    """Drives a deterministic fault schedule instead of Poisson faults."""

    def __init__(self, sim: Simulator, machines: List[Machine],
                 network: Network, schedule: FaultSchedule,
                 on_repair: Optional[Callable[[Machine], None]] = None):
        super().__init__(sim, machines, failure_rate=1.0, repair_rate=1.0,
                         seed=schedule.seed, on_repair=on_repair)
        self.network = network
        self.schedule = schedule
        self._machine_by_name = {m.name: m for m in machines}
        #: applied-op log: (virtual time, description) — deterministic,
        #: handy for digests and post-mortems.
        self.applied: List[Tuple[float, str]] = []
        self._installed_faults: List[LinkFault] = []
        self._active_partitions: List[Tuple[Tuple[str, ...], ...]] = []
        #: armed reconfiguration-aware actions, in schedule order.  Each
        #: entry is a dict: {"action", "armed", "fired"} — armed flips at
        #: ``at``, fired when the matching bus event lands.
        self._armed: List[dict] = [
            {"action": a, "armed": False, "fired": False}
            for a in schedule.actions
            if isinstance(a, (CrashDuringTransfer, PartitionDuringJoin))]
        self._bus_sub = None
        unknown = [name for name in schedule.machines()
                   if name not in self._machine_by_name]
        if unknown:
            raise ValueError(
                "schedule references unknown machines: %s" % unknown)

    # FailureModel.start() stamps _started_at and calls this hook.
    def _spawn_drivers(self) -> None:
        ops = self._build_ops()
        proc = self.sim.spawn(self._walk(ops), name="fault-schedule",
                              daemon=True)
        self._processes.append(proc)
        if self._armed and self._bus_sub is None:
            self._bus_sub = self.sim.bus.subscribe(
                self._on_bind_event, kinds=("bind.get_state", "bind.member"))

    def stop(self) -> None:
        """Stop walking and roll back any still-open fault windows."""
        super().stop()
        if self._bus_sub is not None:
            self.sim.bus.unsubscribe(self._bus_sub)
            self._bus_sub = None
        for fault in self._installed_faults:
            self.network.remove_fault(fault)
        self._installed_faults = []
        if self._active_partitions:
            self._active_partitions = []
            self.network.heal()

    # -- the op timeline ------------------------------------------------

    def _build_ops(self):
        """Expand windowed actions into (time, seq, fn, desc) begin/end
        ops, sorted by time (seq breaks ties deterministically)."""
        ops = []
        seq = 0

        def add(at: float, fn: Callable[[], None], desc: str) -> None:
            nonlocal seq
            ops.append((at, seq, fn, desc))
            seq += 1

        for action in self.schedule.actions:
            if isinstance(action, Crash):
                machine = self._machine_by_name[action.machine]
                add(action.at, lambda m=machine: self._crash_machine(m),
                    "crash %s" % action.machine)
                if action.duration is not None:
                    add(action.at + action.duration,
                        lambda m=machine: self._repair_machine(m),
                        "repair %s" % action.machine)
            elif isinstance(action, Partition):
                add(action.at,
                    lambda a=action: self._open_partition(a.groups),
                    "partition %s" % (action.groups,))
                add(action.at + action.duration,
                    lambda a=action: self._close_partition(a.groups),
                    "heal %s" % (action.groups,))
            elif isinstance(action, (CrashDuringTransfer,
                                     PartitionDuringJoin)):
                entry = next(e for e in self._armed if e["action"] is action)
                add(action.at, lambda e=entry: self._arm(e),
                    "arm %s" % action.describe())
                # Logs itself only when the trigger never came.
                add(action.at + action.expiry,
                    lambda e=entry: self._expire(e), None)
            else:
                fault = self._link_fault(action)
                add(action.at, lambda f=fault: self._install_fault(f),
                    "install %s" % action.describe())
                add(action.at + action.duration,
                    lambda f=fault: self._uninstall_fault(f),
                    "remove %s" % action.describe())
        ops.sort(key=lambda op: (op[0], op[1]))
        return ops

    @staticmethod
    def _link_fault(action) -> LinkFault:
        if isinstance(action, Loss):
            return LinkFault(loss=action.probability,
                             src=action.src, dst=action.dst)
        if isinstance(action, Duplicate):
            return LinkFault(duplicate=action.probability,
                             src=action.src, dst=action.dst)
        if isinstance(action, Delay):
            return LinkFault(extra_delay=action.extra,
                             src=action.src, dst=action.dst)
        if isinstance(action, Reorder):
            return LinkFault(reorder=action.probability,
                             reorder_hold=action.hold,
                             src=action.src, dst=action.dst)
        raise TypeError("not a link-fault action: %r" % (action,))

    def _walk(self, ops):
        for at, _seq, fn, desc in ops:
            delay = at - self.sim.now
            if delay > 0:
                yield Sleep(delay)
            fn()
            if desc is not None:
                self.applied.append((self.sim.now, desc))

    # -- armed (event-aligned) actions ----------------------------------

    def _arm(self, entry: dict) -> None:
        if not entry["fired"]:
            entry["armed"] = True

    def _expire(self, entry: dict) -> None:
        if entry["armed"] and not entry["fired"]:
            entry["armed"] = False
            self.applied.append(
                (self.sim.now, "expired %s" % entry["action"].describe()))

    def armed_fire_counts(self) -> Tuple[int, int]:
        """(fired, expired-or-pending) over the armed actions."""
        fired = sum(1 for e in self._armed if e["fired"])
        return fired, len(self._armed) - fired

    def _on_bind_event(self, event) -> None:
        kind = event.kind
        if kind == "bind.get_state":
            want: type = CrashDuringTransfer
        elif kind == "bind.member" and getattr(event, "op", "") == "add":
            want = PartitionDuringJoin
        else:
            return
        for entry in self._armed:
            action = entry["action"]
            if (entry["armed"] and not entry["fired"]
                    and isinstance(action, want)):
                entry["fired"] = True
                entry["armed"] = False
                self.applied.append(
                    (self.sim.now, "fired %s" % action.describe()))
                # Never mutate the world from inside a bus handler — the
                # emitting process is mid-execution.  A helper process
                # spawned *now* performs the fault at this same virtual
                # instant, once the kernel regains control.
                if isinstance(action, CrashDuringTransfer):
                    gen = self._fire_crash(
                        self._machine_by_name[action.machine],
                        action.duration)
                    name = "armed-crash:%s" % action.machine
                else:
                    gen = self._fire_join_partition(action)
                    name = "armed-partition:%s" % action.machine
                proc = self.sim.spawn(gen, name=name, daemon=True)
                self._processes.append(proc)
                break

    def _fire_crash(self, machine: Machine, duration):
        self._crash_machine(machine)
        if duration is None:
            return
        yield Sleep(duration)
        self._repair_machine(machine)
        self.applied.append(
            (self.sim.now, "repair %s (armed)" % machine.name))

    def _fire_join_partition(self, action: PartitionDuringJoin):
        others = tuple(sorted(
            name for name in self._machine_by_name if name != action.machine))
        groups = tuple(g for g in ((action.machine,), others) if g)
        self._open_partition(groups)
        yield Sleep(action.duration)
        self._close_partition(groups)
        self.applied.append(
            (self.sim.now, "heal join-partition %s" % action.machine))

    # -- op implementations ---------------------------------------------

    def _open_partition(self, groups) -> None:
        self._active_partitions.append(groups)
        self.network.partition(groups)

    def _close_partition(self, groups) -> None:
        if groups in self._active_partitions:
            self._active_partitions.remove(groups)
        if self._active_partitions:
            self.network.partition(self._active_partitions[-1])
        else:
            self.network.heal()

    def _install_fault(self, fault: LinkFault) -> None:
        self.network.add_fault(fault)
        self._installed_faults.append(fault)

    def _uninstall_fault(self, fault: LinkFault) -> None:
        self.network.remove_fault(fault)
        if fault in self._installed_faults:
            self._installed_faults.remove(fault)
