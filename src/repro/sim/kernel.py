"""The discrete-event simulator and its process model.

Processes are Python generators that yield *waitables*:

- ``Sleep(dt)`` suspends the process for ``dt`` units of virtual time.
- an :class:`~repro.sim.events.Event` suspends until the event fires and
  resumes with the event's value.
- ``AnyOf(w0, w1, ...)`` suspends until the first of several waitables
  fires and resumes with ``(index, value)``.
- another :class:`Process` suspends until that process terminates and
  resumes with its return value (a *join*).

Composition uses plain ``yield from``: a protocol helper written as a
generator can be called from any process.

Time is a float in milliseconds by convention (the paper reports
milliseconds per call), although nothing in the kernel depends on the unit.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.obs import events as obs_events
from repro.obs.bus import EventBus


class SimulationError(Exception):
    """An error raised by the simulation kernel itself."""


class ProcessKilled(Exception):
    """Raised inside a process when it is killed (e.g. its host crashed)."""


class Interrupted(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Sleep:
    """Waitable: suspend the yielding process for ``delay`` time units."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise ValueError("negative sleep delay: %r" % delay)
        self.delay = delay

    def __repr__(self) -> str:
        return "Sleep(%r)" % self.delay


class AnyOf:
    """Waitable: suspend until the first of several waitables fires.

    The process resumes with a ``(index, value)`` pair identifying which
    waitable fired first and the value it carried.  The remaining waitables
    are left undisturbed (event subscriptions are cancelled).
    """

    def __init__(self, *waitables: Any):
        if not waitables:
            raise ValueError("AnyOf requires at least one waitable")
        self.waitables = waitables

    def __repr__(self) -> str:
        return "AnyOf(%s)" % ", ".join(repr(w) for w in self.waitables)


class _ScheduledCall:
    """A cancellable entry in the simulator's event queue."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "_ScheduledCall") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Process:
    """A lightweight simulated process driving a generator.

    A process terminates when its generator returns (the return value is
    stored in :attr:`result`), raises (the exception is stored in
    :attr:`exception`), or when it is killed.
    """

    def __init__(self, sim: "Simulator", gen: Generator, name: str):
        self.sim = sim
        self.gen = gen
        self.name = name
        self.alive = True
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self.killed = False
        # Each joiner entry is (process, resume_callback): the callback
        # receives the result, so joins compose with AnyOf; exceptions are
        # thrown into the joining process directly.
        self._joiners: List[Tuple["Process", Callable[[Any], None]]] = []
        # The cancel hooks for whatever this process is currently waiting on.
        self._wait_cancels: List[Callable[[], None]] = []
        self.daemon = False
        # Set by run_process: failures are re-raised there, not by run().
        self.observed = False

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return "<Process %s (%s)>" % (self.name, state)

    # -- lifecycle ---------------------------------------------------------

    def kill(self, exc: Optional[BaseException] = None) -> None:
        """Terminate this process.

        If the process is currently suspended it never resumes.  ``exc``
        (default :class:`ProcessKilled`) is delivered to the generator so
        ``finally`` blocks run, then recorded as the termination cause.
        """
        if not self.alive:
            return
        self._cancel_waits()
        self.killed = True
        if exc is None:
            exc = ProcessKilled("%s killed" % self.name)
        try:
            self.gen.throw(exc)
        except (StopIteration, ProcessKilled, Interrupted):
            pass
        except BaseException:
            # A finally block misbehaved; the process is dead regardless.
            pass
        else:
            # The generator swallowed the kill and yielded again; close it.
            self.gen.close()
        self._finish(result=None, exception=exc, killed=True)

    def interrupt(self, cause: Any = None) -> None:
        """Deliver an :class:`Interrupted` exception to a waiting process."""
        if not self.alive:
            return
        self._cancel_waits()
        self.sim._schedule_now(self._step_throw, Interrupted(cause))

    def join(self) -> "Process":
        """A process is itself a waitable; joining is just yielding it."""
        return self

    # -- internals ---------------------------------------------------------

    def _cancel_waits(self) -> None:
        for cancel in self._wait_cancels:
            cancel()
        self._wait_cancels = []

    def _finish(self, result: Any, exception: Optional[BaseException],
                killed: bool = False) -> None:
        self.alive = False
        self.result = result
        self.exception = exception
        self.killed = killed
        if self.sim.bus.active:
            self.sim.bus.emit(obs_events.ProcessExited(
                t=self.sim.now, name=self.name, killed=killed,
                failed=exception is not None and not killed))
        joiners, self._joiners = self._joiners, []
        for joiner, resume in joiners:
            if exception is not None and not killed:
                joiner._cancel_waits()
                self.sim._schedule_now(joiner._step_throw, exception)
            else:
                self.sim._schedule_now(resume, result)
        if exception is not None and not killed and not joiners:
            if not self.daemon and not self.observed:
                self.sim._record_failure(self, exception)

    def _step_send(self, value: Any) -> None:
        if not self.alive:
            return
        self._wait_cancels = []
        try:
            waitable = self.gen.send(value)
        except StopIteration as stop:
            self._finish(result=getattr(stop, "value", None), exception=None)
            return
        except BaseException as exc:
            self._finish(result=None, exception=exc)
            return
        self._wait_on(waitable)

    def _step_throw(self, exc: BaseException) -> None:
        if not self.alive:
            return
        self._wait_cancels = []
        try:
            waitable = self.gen.throw(exc)
        except StopIteration as stop:
            self._finish(result=getattr(stop, "value", None), exception=None)
            return
        except BaseException as raised:
            self._finish(result=None, exception=raised)
            return
        self._wait_on(waitable)

    def _wait_on(self, waitable: Any) -> None:
        cancel = self._subscribe(waitable, self._step_send)
        self._wait_cancels.append(cancel)

    def _subscribe(self, waitable: Any,
                   resume: Callable[[Any], None]) -> Callable[[], None]:
        """Arrange for ``resume(value)`` when ``waitable`` fires."""
        if isinstance(waitable, Sleep):
            handle = self.sim.schedule(waitable.delay, resume, None)
            return handle.cancel
        if isinstance(waitable, AnyOf):
            return self._subscribe_any(waitable, resume)
        if isinstance(waitable, Process):
            return self._subscribe_process(waitable, resume)
        # Events and conditions provide the subscription protocol.
        subscribe = getattr(waitable, "_subscribe", None)
        if subscribe is None:
            raise SimulationError(
                "process %s yielded a non-waitable: %r" % (self.name, waitable))
        return subscribe(resume)

    def _subscribe_any(self, anyof: AnyOf,
                       resume: Callable[[Any], None]) -> Callable[[], None]:
        cancels: List[Callable[[], None]] = []
        done = [False]

        def fire(index: int, value: Any) -> None:
            if done[0]:
                return
            done[0] = True
            for i, cancel in enumerate(cancels):
                if i != index:
                    cancel()
            resume((index, value))

        for i, sub in enumerate(anyof.waitables):
            def make(index: int) -> Callable[[Any], None]:
                return lambda value: fire(index, value)
            cancels.append(self._subscribe(sub, make(i)))
            if done[0]:
                break

        def cancel_all() -> None:
            done[0] = True
            for cancel in cancels:
                cancel()

        return cancel_all

    def _subscribe_process(self, proc: "Process",
                           resume: Callable[[Any], None]) -> Callable[[], None]:
        if not proc.alive:
            if proc.exception is not None and not proc.killed:
                handle = self.sim.schedule(
                    0.0, self._step_throw, proc.exception)
            else:
                handle = self.sim.schedule(0.0, resume, proc.result)
            return handle.cancel
        entry = (self, resume)
        proc._joiners.append(entry)

        def cancel() -> None:
            if entry in proc._joiners:
                proc._joiners.remove(entry)

        return cancel


class Simulator:
    """The event loop: a virtual clock and a priority queue of callbacks."""

    def __init__(self, monitors=None):
        self.now: float = 0.0
        self._queue: List[_ScheduledCall] = []
        self._seq = itertools.count()
        self._processes: List[Process] = []
        self._failures: List[Tuple[Process, BaseException]] = []
        self._proc_names = itertools.count()
        #: the observability event bus for this simulation world; every
        #: layer built on this simulator emits its events here.
        self.bus = EventBus()
        #: invariant monitoring (repro.obs.monitor).  ``monitors=True``
        #: attaches the default suite; a sequence attaches those
        #: monitors.  Imported lazily: most simulations run unobserved
        #: and never pay for the observability machinery.
        self.monitor_suite = None
        if monitors:
            from repro.obs.monitor import MonitorSuite
            self.monitor_suite = MonitorSuite(
                self, None if monitors is True else monitors)

    # -- scheduling --------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> _ScheduledCall:
        """Run ``fn(*args)`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise ValueError("cannot schedule in the past (delay=%r)" % delay)
        call = _ScheduledCall(self.now + delay, next(self._seq), fn, args)
        heapq.heappush(self._queue, call)
        return call

    def _schedule_now(self, fn: Callable, *args: Any) -> _ScheduledCall:
        return self.schedule(0.0, fn, *args)

    def spawn(self, gen: Generator, name: Optional[str] = None,
              daemon: bool = False) -> Process:
        """Create a process from a generator and start it at the current time.

        Daemon processes may outlive the simulation without their failures
        being reported (used for background services like retransmitters).
        """
        if name is None:
            name = "proc-%d" % next(self._proc_names)
        proc = Process(self, gen, name)
        proc.daemon = daemon
        self._processes.append(proc)
        self._schedule_now(proc._step_send, None)
        if self.bus.active:
            self.bus.emit(obs_events.ProcessSpawned(
                t=self.now, name=name, daemon=daemon))
        return proc

    def _record_failure(self, proc: Process, exc: BaseException) -> None:
        self._failures.append((proc, exc))

    # -- running -----------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None,
            stop_when: Optional[Callable[[], bool]] = None) -> float:
        """Process events until the queue drains, ``until`` is reached,
        ``max_events`` callbacks have run, or ``stop_when()`` becomes true
        (checked after each callback).  Returns the final clock value.

        If any non-daemon process terminated with an unhandled exception and
        nobody joined it, the first such exception is re-raised here: errors
        never pass silently.
        """
        count = 0
        while self._queue:
            call = self._queue[0]
            if until is not None and call.time > until:
                self.now = until
                break
            heapq.heappop(self._queue)
            if call.cancelled:
                continue
            self.now = call.time
            call.fn(*call.args)
            count += 1
            if self._failures:
                proc, exc = self._failures[0]
                self._failures = []
                raise SimulationError(
                    "process %s died: %r" % (proc.name, exc)) from exc
            if max_events is not None and count >= max_events:
                break
            if stop_when is not None and stop_when():
                break
        else:
            if until is not None and until > self.now:
                self.now = until
        return self.now

    def run_process(self, gen: Generator, name: Optional[str] = None,
                    until: Optional[float] = None) -> Any:
        """Spawn a process, run the simulation until it completes (or
        ``until``), and return its result.

        The simulation stops as soon as the process terminates, so
        background daemons (retransmitters, deadlock detectors, failure
        drivers) do not keep the run alive forever.  An exception raised
        by the process is re-raised here as itself (not wrapped in
        SimulationError)."""
        proc = self.spawn(gen, name=name)
        proc.observed = True
        self.run(until=until, stop_when=lambda: not proc.alive)
        if proc.alive:
            raise SimulationError(
                "process %s did not finish by t=%r" % (proc.name, self.now))
        if proc.exception is not None:
            raise proc.exception
        return proc.result

    # -- introspection -----------------------------------------------------

    def pending_events(self) -> int:
        return sum(1 for call in self._queue if not call.cancelled)

    def live_processes(self) -> List[Process]:
        return [p for p in self._processes if p.alive]
