"""The discrete-event simulator and its process model.

Processes are Python generators that yield *waitables*:

- ``Sleep(dt)`` suspends the process for ``dt`` units of virtual time.
- an :class:`~repro.sim.events.Event` suspends until the event fires and
  resumes with the event's value.
- ``AnyOf(w0, w1, ...)`` suspends until the first of several waitables
  fires and resumes with ``(index, value)``.
- another :class:`Process` suspends until that process terminates and
  resumes with its return value (a *join*).

Composition uses plain ``yield from``: a protocol helper written as a
generator can be called from any process.

Time is a float in milliseconds by convention (the paper reports
milliseconds per call), although nothing in the kernel depends on the unit.

Hot-path design (see docs/PERFORMANCE.md)
-----------------------------------------

The event queue holds ``(time, seq, call)`` tuples so heap comparisons
run entirely in C (``seq`` is unique, so the ``call`` object is never
compared).  :class:`_ScheduledCall` handles are pooled on a freelist and
recycled as soon as their callback has run, which makes steady-state
scheduling allocation-free.

Same-timestamp dispatch is batched through the *ready lane*: a resume
scheduled at the current time (``_schedule_now`` — every event fire,
queue hand-off and process step) is appended to a FIFO deque instead of
the heap, and the run loop merges the two sources by ``(time, seq)``.
Entries in the lane are already sorted (the clock never moves backwards
while it is non-empty, and ``seq`` is monotonic), so draining a burst of
same-timestamp callbacks costs one O(1) ``popleft`` and one C-level
tuple comparison each, instead of an O(log n) ``heappush`` +
``heappop`` pair.  The executed order is provably identical to the
single-heap kernel: it is the merge of two (time, seq)-sorted sequences,
and (time, seq) is a total order over all scheduled entries.  Two
invariants follow:

1. A handle returned by :meth:`Simulator.schedule` may be cancelled *at
   most once*, and **never after its callback has run** — by then the
   handle may already be re-armed for an unrelated callback.  Every
   holder in this repository either drops or nulls its reference when
   the callback fires.
2. Cancellation is O(1) (a flag) and lazily reclaimed; the kernel
   compacts the heap when dead entries outnumber live ones, so
   lazily-cancelled timers cannot bloat the queue.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from heapq import heappush as heappush
from typing import (
    Any,
    Callable,
    Deque,
    Generator,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.obs import events as obs_events
from repro.obs.bus import EventBus

#: shared args tuple for timer resumes — every Sleep wake-up is
#: ``resume(None)``, so the hot path never builds a fresh tuple.
_RESUME_NONE = (None,)

#: recycled-handle pool bound: enough for any realistic concurrency
#: plateau while keeping a pathological burst from pinning memory.
_FREELIST_MAX = 4096

#: compaction trigger: dead heap entries tolerated before a rebuild.
_COMPACT_MIN_DEAD = 64


class SimulationError(Exception):
    """An error raised by the simulation kernel itself."""


class ProcessKilled(Exception):
    """Raised inside a process when it is killed (e.g. its host crashed)."""


class Interrupted(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Sleep:
    """Waitable: suspend the yielding process for ``delay`` time units."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise ValueError("negative sleep delay: %r" % delay)
        self.delay = delay

    def __repr__(self) -> str:
        return "Sleep(%r)" % self.delay


class AnyOf:
    """Waitable: suspend until the first of several waitables fires.

    The process resumes with a ``(index, value)`` pair identifying which
    waitable fired first and the value it carried.  The remaining waitables
    are left undisturbed (event subscriptions are cancelled).
    """

    __slots__ = ("waitables",)

    def __init__(self, *waitables: Any):
        if not waitables:
            raise ValueError("AnyOf requires at least one waitable")
        self.waitables = waitables

    def __repr__(self) -> str:
        return "AnyOf(%s)" % ", ".join(repr(w) for w in self.waitables)


class _ScheduledCall:
    """A cancellable entry in the simulator's event queue.

    The heap orders ``(time, seq, call)`` tuples, so this object carries
    no ordering state of its own — it is purely the cancellation handle
    and the callback payload, which lets the simulator recycle instances
    through a freelist (see the module docstring for the invariant).
    """

    __slots__ = ("fn", "args", "cancelled", "sim")

    def __init__(self, fn: Callable, args: tuple, sim: "Simulator"):
        self.fn: Optional[Callable] = fn
        self.args: Optional[tuple] = args
        self.cancelled = False
        self.sim = sim

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            sim = self.sim
            sim._live -= 1
            sim._dead += 1
            # Compact when the dead outnumber the live entries actually
            # pending (heap + ready lane; the _live counter can read
            # transiently high inside a run() slice).
            if sim._dead > _COMPACT_MIN_DEAD \
                    and sim._dead * 2 > len(sim._queue) + len(sim._ready):
                sim._compact()


class _JoinWait:
    """A joiner entry on a process: tombstoned in place on cancellation."""

    __slots__ = ("joiner", "resume")

    def __init__(self, joiner: "Process", resume: Callable[[Any], None]):
        self.joiner: Optional["Process"] = joiner
        self.resume: Optional[Callable[[Any], None]] = resume

    def cancel(self) -> None:
        self.joiner = None
        self.resume = None


class _AnyOfWait:
    """Live state for a multi-waitable AnyOf: first fire wins, cancels
    the losers, and resumes the process with ``(index, value)``."""

    __slots__ = ("resume", "cancels", "done")

    def __init__(self, resume: Callable[[Any], None]):
        self.resume = resume
        self.cancels: List[Any] = []
        self.done = False

    def _fire(self, index: int, value: Any) -> None:
        if self.done:
            return
        self.done = True
        cancels = self.cancels
        for i in range(len(cancels)):
            if i != index:
                cancels[i].cancel()
        self.resume((index, value))

    def cancel(self) -> None:
        if self.done:
            return
        self.done = True
        for canceller in self.cancels:
            canceller.cancel()


class _AnyOfBranch:
    """The resume callback for one branch of an AnyOf (no closures)."""

    __slots__ = ("wait", "index")

    def __init__(self, wait: _AnyOfWait, index: int):
        self.wait = wait
        self.index = index

    def __call__(self, value: Any) -> None:
        self.wait._fire(self.index, value)


class _IndexZero:
    """Resume wrapper for the single-waitable AnyOf fast path: delivers
    ``(0, value)`` without allocating the full _AnyOfWait machinery."""

    __slots__ = ("resume",)

    def __init__(self, resume: Callable[[Any], None]):
        self.resume = resume

    def __call__(self, value: Any) -> None:
        self.resume((0, value))


class Process:
    """A lightweight simulated process driving a generator.

    A process terminates when its generator returns (the return value is
    stored in :attr:`result`), raises (the exception is stored in
    :attr:`exception`), or when it is killed.
    """

    __slots__ = ("sim", "gen", "name", "alive", "result", "exception",
                 "killed", "daemon", "observed", "_joiners", "_wait_cancel",
                 "_step", "_stop_on_exit")

    def __init__(self, sim: "Simulator", gen: Generator, name: str):
        self.sim = sim
        self.gen = gen
        self.name = name
        self.alive = True
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self.killed = False
        # Joiner entries (_JoinWait); lazily allocated — most processes
        # are never joined.
        self._joiners: Optional[List[_JoinWait]] = None
        # The cancel handle for whatever this process is waiting on (a
        # process waits on exactly one waitable at a time; AnyOf manages
        # its branches internally).
        self._wait_cancel: Any = None
        self.daemon = False
        # Set by run_process: failures are re-raised there, not by run().
        self.observed = False
        #: run_process sets this so _finish can stop the event loop
        #: without a per-callback stop_when() poll.
        self._stop_on_exit = False
        # One bound method for every resume, instead of one per wait.
        self._step = self._step_send

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return "<Process %s (%s)>" % (self.name, state)

    # -- lifecycle ---------------------------------------------------------

    def kill(self, exc: Optional[BaseException] = None) -> None:
        """Terminate this process.

        If the process is currently suspended it never resumes.  ``exc``
        (default :class:`ProcessKilled`) is delivered to the generator so
        ``finally`` blocks run, then recorded as the termination cause.
        """
        if not self.alive:
            return
        self._cancel_waits()
        self.killed = True
        if exc is None:
            exc = ProcessKilled("%s killed" % self.name)
        try:
            self.gen.throw(exc)
        except (StopIteration, ProcessKilled, Interrupted):
            pass
        except BaseException:
            # A finally block misbehaved; the process is dead regardless.
            pass
        else:
            # The generator swallowed the kill and yielded again; close it.
            self.gen.close()
        self._finish(result=None, exception=exc, killed=True)

    def interrupt(self, cause: Any = None) -> None:
        """Deliver an :class:`Interrupted` exception to a waiting process."""
        if not self.alive:
            return
        self._cancel_waits()
        self.sim._schedule_now(self._step_throw, Interrupted(cause))

    def join(self) -> "Process":
        """A process is itself a waitable; joining is just yielding it."""
        return self

    # -- internals ---------------------------------------------------------

    def _cancel_waits(self) -> None:
        canceller = self._wait_cancel
        if canceller is not None:
            self._wait_cancel = None
            canceller.cancel()

    def _finish(self, result: Any, exception: Optional[BaseException],
                killed: bool = False) -> None:
        sim = self.sim
        self.alive = False
        self.result = result
        self.exception = exception
        self.killed = killed
        if sim.bus.active:
            sim.bus.emit(obs_events.ProcessExited(
                t=sim.now, name=self.name, killed=killed,
                failed=exception is not None and not killed))
        if self._stop_on_exit:
            sim._stop = True
        joiners, self._joiners = self._joiners, None
        delivered = 0
        if joiners:
            for entry in joiners:
                joiner = entry.joiner
                if joiner is None:
                    continue
                delivered += 1
                if exception is not None and not killed:
                    joiner._cancel_waits()
                    sim._schedule_now(joiner._step_throw, exception)
                else:
                    sim._schedule_now(entry.resume, result)
        if exception is not None and not killed and not delivered:
            if not self.daemon and not self.observed:
                sim._record_failure(self, exception)

    def _step_send(self, value: Any) -> None:
        if not self.alive:
            return
        self._wait_cancel = None
        try:
            waitable = self.gen.send(value)
        except StopIteration as stop:
            self._finish(result=getattr(stop, "value", None), exception=None)
            return
        except BaseException as exc:
            self._finish(result=None, exception=exc)
            return
        # Inlined Sleep fast path (the most common wait by far): arm a
        # pooled timer directly, skipping the _arm/schedule call frames.
        # Sleep.__init__ already validated delay >= 0.
        if waitable.__class__ is Sleep:
            sim = self.sim
            free = sim._free
            if free:
                call = free.pop()
                call.fn = self._step
                call.args = _RESUME_NONE
                call.cancelled = False
            else:
                sim.calls_allocated += 1
                call = _ScheduledCall(self._step, _RESUME_NONE, sim)
            heappush(sim._queue,
                     (sim.now + waitable.delay, next(sim._seq), call))
            sim._live += 1
            self._wait_cancel = call
            return
        self._wait_cancel = self._arm(waitable, self._step)

    def _step_throw(self, exc: BaseException) -> None:
        if not self.alive:
            return
        self._wait_cancel = None
        try:
            waitable = self.gen.throw(exc)
        except StopIteration as stop:
            self._finish(result=getattr(stop, "value", None), exception=None)
            return
        except BaseException as raised:
            self._finish(result=None, exception=raised)
            return
        self._wait_cancel = self._arm(waitable, self._step)

    def _arm(self, waitable: Any, resume: Callable[[Any], None]):
        """Arrange for ``resume(value)`` when ``waitable`` fires; returns
        a cancellation handle (anything with a ``cancel()`` method)."""
        if isinstance(waitable, Sleep):
            # The fast path: a timer is one pooled heap entry, nothing else.
            return self.sim.schedule(waitable.delay, resume, None)
        subscribe = getattr(waitable, "_subscribe", None)
        if subscribe is not None:
            # Events, conditions and queue-gets provide the subscription
            # protocol; they are the next most common waitables.
            return subscribe(resume)
        if isinstance(waitable, AnyOf):
            return self._arm_any(waitable, resume)
        if isinstance(waitable, Process):
            return self._arm_process(waitable, resume)
        raise SimulationError(
            "process %s yielded a non-waitable: %r" % (self.name, waitable))

    def _arm_any(self, anyof: AnyOf, resume: Callable[[Any], None]):
        waitables = anyof.waitables
        if len(waitables) == 1:
            # Degenerate AnyOf: subscribe the sole waitable directly with
            # an index-tagging resume; its own handle is the canceller.
            return self._arm(waitables[0], _IndexZero(resume))
        wait = _AnyOfWait(resume)
        cancels = wait.cancels
        for i, sub in enumerate(waitables):
            cancels.append(self._arm(sub, _AnyOfBranch(wait, i)))
        return wait

    def _arm_process(self, proc: "Process",
                           resume: Callable[[Any], None]):
        if not proc.alive:
            if proc.exception is not None and not proc.killed:
                return self.sim.schedule(0.0, self._step_throw, proc.exception)
            return self.sim.schedule(0.0, resume, proc.result)
        entry = _JoinWait(self, resume)
        if proc._joiners is None:
            proc._joiners = [entry]
        else:
            proc._joiners.append(entry)
        return entry


class Simulator:
    """The event loop: a virtual clock and a priority queue of callbacks."""

    def __init__(self, monitors=None):
        self.now: float = 0.0
        #: the heap holds (time, seq, call) tuples so every comparison is
        #: a C-level tuple comparison (seq is unique; call never compares).
        self._queue: List[Tuple[float, int, _ScheduledCall]] = []
        #: the ready lane: same-timestamp entries from ``_schedule_now``,
        #: kept (time, seq)-sorted by construction and merged with the
        #: heap in run() — batched dispatch skips the heap entirely.
        self._ready: Deque[Tuple[float, int, _ScheduledCall]] = deque()
        self._seq: Iterator[int] = itertools.count()
        self._processes: List[Process] = []
        self._failures: List[Tuple[Process, BaseException]] = []
        self._proc_names = itertools.count()
        #: recycled _ScheduledCall handles (see module docstring).
        self._free: List[_ScheduledCall] = []
        #: non-cancelled entries in the heap (pending_events is O(1)).
        self._live = 0
        #: cancelled entries still awaiting lazy removal from the heap.
        self._dead = 0
        #: set by Process._finish for run_process; checked by run().
        self._stop = False
        # -- machine-independent perf counters (benchmarks/bench_wallclock
        # and `repro perf` read these; they are deterministic because the
        # simulation is).
        #: callbacks executed by run() over this simulator's lifetime.
        self.callbacks_run = 0
        #: _ScheduledCall objects constructed (freelist misses).
        self.calls_allocated = 0
        #: entries drained from the ready lane (the batched same-time
        #: dispatch path; cancelled handles included) — with
        #: callbacks_run this gives the heap-bypass share.
        self.ready_dispatched = 0
        #: the observability event bus for this simulation world; every
        #: layer built on this simulator emits its events here.
        self.bus = EventBus()
        #: invariant monitoring (repro.obs.monitor).  ``monitors=True``
        #: attaches the default suite; a sequence attaches those
        #: monitors.  Imported lazily: most simulations run unobserved
        #: and never pay for the observability machinery.
        self.monitor_suite: Optional[Any] = None
        if monitors:
            from repro.obs.monitor import MonitorSuite
            self.monitor_suite = MonitorSuite(
                self, None if monitors is True else monitors)

    # -- scheduling --------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> _ScheduledCall:
        """Run ``fn(*args)`` after ``delay`` units of virtual time.

        The returned handle may be cancelled at most once, and never
        after the callback has run (handles are pooled and recycled)."""
        if delay < 0:
            raise ValueError("cannot schedule in the past (delay=%r)" % delay)
        free = self._free
        if free:
            call = free.pop()
            call.fn = fn
            call.args = args
            call.cancelled = False
        else:
            self.calls_allocated += 1
            call = _ScheduledCall(fn, args, self)
        heappush(self._queue, (self.now + delay, next(self._seq), call))
        self._live += 1
        return call

    def schedule_at(self, time: float, fn: Callable,
                    *args: Any) -> _ScheduledCall:
        """Run ``fn(*args)`` at absolute virtual time ``time``.

        ``schedule(t - now)`` re-derives the absolute time as
        ``now + (t - now)``, which is not always bit-identical to ``t``
        in floats; cross-shard envelope injection needs the *exact*
        delivery timestamp the source shard computed, so this variant
        pins it."""
        if time < self.now:
            raise ValueError("cannot schedule in the past (t=%r, now=%r)"
                             % (time, self.now))
        free = self._free
        if free:
            call = free.pop()
            call.fn = fn
            call.args = args
            call.cancelled = False
        else:
            self.calls_allocated += 1
            call = _ScheduledCall(fn, args, self)
        heappush(self._queue, (time, next(self._seq), call))
        self._live += 1
        return call

    def _schedule_now(self, fn: Callable, *args: Any) -> _ScheduledCall:
        # schedule(0.0, ...) without the delay validation — the kernel's
        # own resume path, hot enough to skip one call frame.  Entries go
        # to the ready lane (O(1) append, merged by run()) rather than
        # the heap; the guard keeps the lane sorted in the one edge case
        # where run(until=...) moved the clock backwards past pending
        # lane entries.
        free = self._free
        if free:
            call = free.pop()
            call.fn = fn
            call.args = args
            call.cancelled = False
        else:
            self.calls_allocated += 1
            call = _ScheduledCall(fn, args, self)
        ready = self._ready
        now = self.now
        if ready and ready[-1][0] > now:
            heappush(self._queue, (now, next(self._seq), call))
        else:
            ready.append((now, next(self._seq), call))
        self._live += 1
        return call

    def _compact(self) -> None:
        """Drop lazily-cancelled entries and re-heapify (in place, so run()
        loops holding a reference to the queue list stay valid).  Pop
        order is unchanged: (time, seq) is a total order over the
        survivors and heapify preserves it.  The ready lane is swept the
        same way (filtering a sorted deque keeps it sorted)."""
        queue = self._queue
        free = self._free
        live = []
        append = live.append
        for entry in queue:
            call = entry[2]
            if call.cancelled:
                if len(free) < _FREELIST_MAX:
                    call.fn = call.args = None
                    free.append(call)
            else:
                append(entry)
        ready = self._ready
        if ready:
            live_ready = []
            for entry in ready:
                call = entry[2]
                if call.cancelled:
                    if len(free) < _FREELIST_MAX:
                        call.fn = call.args = None
                        free.append(call)
                else:
                    live_ready.append(entry)
            if len(live_ready) != len(ready):
                ready.clear()
                ready.extend(live_ready)
        self._dead = 0
        queue[:] = live
        heapq.heapify(queue)

    def spawn(self, gen: Generator, name: Optional[str] = None,
              daemon: bool = False) -> Process:
        """Create a process from a generator and start it at the current time.

        Daemon processes may outlive the simulation without their failures
        being reported (used for background services like retransmitters).
        """
        if name is None:
            name = "proc-%d" % next(self._proc_names)
        proc = Process(self, gen, name)
        proc.daemon = daemon
        self._processes.append(proc)
        self._schedule_now(proc._step_send, None)
        if self.bus.active:
            self.bus.emit(obs_events.ProcessSpawned(
                t=self.now, name=name, daemon=daemon))
        return proc

    def _record_failure(self, proc: Process, exc: BaseException) -> None:
        self._failures.append((proc, exc))

    # -- running -----------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None,
            stop_when: Optional[Callable[[], bool]] = None) -> float:
        """Process events until the queue drains, ``until`` is reached,
        ``max_events`` callbacks have run, or ``stop_when()`` becomes true
        (checked after each callback).  Returns the final clock value.

        If any non-daemon process terminated with an unhandled exception and
        nobody joined it, the first such exception is re-raised here: errors
        never pass silently.
        """
        queue = self._queue
        ready = self._ready
        free = self._free
        failures = self._failures
        pop = heapq.heappop
        popleft = ready.popleft
        self._stop = False
        count = 0
        drained = 0
        try:
            if until is None and max_events is None and stop_when is None:
                # The hot path: no bound checks, no stop_when() polling —
                # run_process stops the loop via the _stop flag instead.
                # The _live counter is settled once in the finally block
                # (count executed == live entries consumed), not per event.
                # Next event = merge of the heap and the (sorted) ready
                # lane by C-level (time, seq) tuple comparison; a burst of
                # same-timestamp resumes drains from the lane at O(1) per
                # entry with no heap traffic at all.
                while True:
                    if ready:
                        if queue and queue[0] < ready[0]:
                            entry = pop(queue)
                        else:
                            entry = popleft()
                            drained += 1
                    elif queue:
                        entry = pop(queue)
                    else:
                        break
                    call = entry[2]
                    if call.cancelled:
                        self._dead -= 1
                        if len(free) < _FREELIST_MAX:
                            call.fn = call.args = None
                            free.append(call)
                        continue
                    self.now = entry[0]
                    fn = call.fn
                    args = call.args
                    if len(free) < _FREELIST_MAX:
                        free.append(call)
                    fn(*args)
                    count += 1
                    if failures:
                        proc, exc = failures[0]
                        del failures[:]
                        raise SimulationError(
                            "process %s died: %r" % (proc.name, exc)) from exc
                    if self._stop:
                        break
                return self.now
            # The bounded/polled slow path: same merge, with the until /
            # max_events / stop_when checks of the original loop.
            while queue or ready:
                if ready:
                    if queue and queue[0] < ready[0]:
                        entry = queue[0]
                        from_heap = True
                    else:
                        entry = ready[0]
                        from_heap = False
                else:
                    entry = queue[0]
                    from_heap = True
                if until is not None and entry[0] > until:
                    self.now = until
                    break
                if from_heap:
                    pop(queue)
                else:
                    popleft()
                    drained += 1
                call = entry[2]
                if call.cancelled:
                    self._dead -= 1
                    if len(free) < _FREELIST_MAX:
                        call.fn = call.args = None
                        free.append(call)
                    continue
                self.now = entry[0]
                fn = call.fn
                args = call.args
                if len(free) < _FREELIST_MAX:
                    free.append(call)
                fn(*args)
                count += 1
                if failures:
                    proc, exc = failures[0]
                    del failures[:]
                    raise SimulationError(
                        "process %s died: %r" % (proc.name, exc)) from exc
                if max_events is not None and count >= max_events:
                    break
                if stop_when is not None and stop_when():
                    break
                if self._stop:
                    break
            else:
                if until is not None and until > self.now:
                    self.now = until
            return self.now
        finally:
            self.callbacks_run += count
            self.ready_dispatched += drained
            # Each executed callback consumed one live pending entry;
            # settling the counter here keeps the per-event loop free of
            # it.  (The compaction heuristic reading a transiently-high
            # _live mid-run merely compacts a little later — it is only a
            # heuristic.)
            self._live -= count

    def run_process(self, gen: Generator, name: Optional[str] = None,
                    until: Optional[float] = None) -> Any:
        """Spawn a process, run the simulation until it completes (or
        ``until``), and return its result.

        The simulation stops as soon as the process terminates, so
        background daemons (retransmitters, deadlock detectors, failure
        drivers) do not keep the run alive forever.  An exception raised
        by the process is re-raised here as itself (not wrapped in
        SimulationError)."""
        proc = self.spawn(gen, name=name)
        proc.observed = True
        proc._stop_on_exit = True
        self.run(until=until)
        if proc.alive:
            raise SimulationError(
                "process %s did not finish by t=%r" % (proc.name, self.now))
        if proc.exception is not None:
            raise proc.exception
        return proc.result

    # -- introspection -----------------------------------------------------

    def pending_events(self) -> int:
        """Live (non-cancelled) entries in the event queue — O(1)."""
        return self._live

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the earliest live pending event, or ``None`` when
        the queue is drained.

        The sharded driver (:mod:`repro.sim.sharded`) uses this to advance
        a shard kernel up to — but not past — a conservative lookahead
        bound.  Cancelled entries at the head are discarded here exactly
        as run() would discard them (recycled to the freelist, ``_dead``
        settled), so peeking never reports a tombstone's time."""
        queue = self._queue
        ready = self._ready
        free = self._free
        while True:
            if ready:
                if queue and queue[0] < ready[0]:
                    entry = queue[0]
                    from_heap = True
                else:
                    entry = ready[0]
                    from_heap = False
            elif queue:
                entry = queue[0]
                from_heap = True
            else:
                return None
            call = entry[2]
            if call.cancelled:
                if from_heap:
                    heapq.heappop(queue)
                else:
                    ready.popleft()
                self._dead -= 1
                if len(free) < _FREELIST_MAX:
                    call.fn = call.args = None
                    free.append(call)
                continue
            return entry[0]

    def live_processes(self) -> List[Process]:
        return [p for p in self._processes if p.alive]

    def perf_snapshot(self) -> dict:
        """Machine-independent kernel work counters (deterministic)."""
        return {
            "callbacks_run": self.callbacks_run,
            "calls_allocated": self.calls_allocated,
            "ready_dispatched": self.ready_dispatched,
            "pending_live": self._live,
            "pending_dead": self._dead,
            "pending_ready": len(self._ready),
            "freelist": len(self._free),
        }
