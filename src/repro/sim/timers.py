"""A general timer package multiplexed over a single interval timer.

Berkeley 4.2BSD gave Circus exactly one interval timer per process
(``setitimer``), so the paper built "a general timer package ... on top of
the single interval timer" (§4.2.4).  This module reproduces that design:
any number of :class:`Timer` objects are multiplexed over one underlying
alarm, and every re-arm of the underlying alarm can be charged to the
owning process via the ``on_arm`` hook (that is how ``setitimer`` shows up
in the execution profile of Table 4.3).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.obs import events as obs_events
from repro.sim.kernel import Simulator


class Timer:
    """A single timeout: fires ``callback(*args)`` after ``interval``."""

    __slots__ = ("interval", "callback", "args", "deadline", "active", "service")

    def __init__(self, service: "TimerService", interval: float,
                 callback: Callable, args: tuple):
        self.service = service
        self.interval = interval
        self.callback = callback
        self.args = args
        self.deadline = 0.0
        self.active = False

    def start(self) -> "Timer":
        self.service._start(self)
        return self

    def stop(self) -> None:
        self.service._stop(self)

    def restart(self) -> None:
        self.service._stop(self)
        self.service._start(self)

    def __repr__(self) -> str:
        state = "active(deadline=%.3f)" % self.deadline if self.active else "stopped"
        return "<Timer %s %s>" % (self.interval, state)


class TimerService:
    """Multiplexes many timers over one simulated interval timer.

    ``on_arm`` is invoked every time the underlying alarm is (re)armed —
    the host layer uses it to charge a ``setitimer`` system call to the
    owning process, reproducing the accounting in the paper.
    """

    def __init__(self, sim: Simulator,
                 on_arm: Optional[Callable[[], None]] = None):
        self.sim = sim
        self.on_arm = on_arm
        self._timers: List[Timer] = []
        self._alarm = None  # the single underlying scheduled call
        self._alarm_deadline: Optional[float] = None

    def timer(self, interval: float, callback: Callable, *args: Any) -> Timer:
        """Create a (stopped) timer; call ``.start()`` to arm it."""
        return Timer(self, interval, callback, args)

    def after(self, interval: float, callback: Callable, *args: Any) -> Timer:
        """Create and immediately start a timer."""
        return self.timer(interval, callback, *args).start()

    def cancel_all(self) -> None:
        for timer in list(self._timers):
            self._stop(timer)

    def active_count(self) -> int:
        return len(self._timers)

    # -- internals ---------------------------------------------------------

    def _start(self, timer: Timer) -> None:
        if timer.active:
            raise RuntimeError("timer already active: %r" % timer)
        timer.deadline = self.sim.now + timer.interval
        timer.active = True
        self._timers.append(timer)
        self._rearm()

    def _stop(self, timer: Timer) -> None:
        if not timer.active:
            return
        timer.active = False
        self._timers.remove(timer)
        self._rearm()

    def _rearm(self) -> None:
        """Point the single underlying alarm at the earliest deadline."""
        next_deadline = min((t.deadline for t in self._timers), default=None)
        if next_deadline == self._alarm_deadline:
            return
        if self._alarm is not None:
            self._alarm.cancel()
            self._alarm = None
        self._alarm_deadline = next_deadline
        if next_deadline is None:
            return
        delay = max(0.0, next_deadline - self.sim.now)
        self._alarm = self.sim.schedule(delay, self._alarm_fired)
        if self.on_arm is not None:
            self.on_arm()

    def _alarm_fired(self) -> None:
        self._alarm = None
        self._alarm_deadline = None
        now = self.sim.now
        due = [t for t in self._timers if t.deadline <= now]
        if due and self.sim.bus.active:
            self.sim.bus.emit(obs_events.TimerFired(t=now, due=len(due)))
        for timer in due:
            timer.active = False
            self._timers.remove(timer)
        self._rearm()
        for timer in due:
            timer.callback(*timer.args)
