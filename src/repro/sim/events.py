"""Synchronization primitives for simulated processes.

All of these are *waitables*: a process suspends on one with ``yield``.

- :class:`Event` — one-shot, value-carrying.  Waiting on an already-fired
  event resumes immediately with the stored value.
- :class:`Condition` — reusable broadcast signal (the paper's protocol code
  awaits ``troupe.status_change``; this is that construct).
- :class:`Queue` — unbounded FIFO with blocking ``get``.
"""

from __future__ import annotations

import collections
from typing import Any, Callable, Deque, List

from repro.sim.kernel import Simulator


class Event:
    """A one-shot event carrying an optional value.

    ``fire(value)`` wakes every current waiter with ``value`` and causes all
    future waits to resume immediately.  Firing twice is an error: one-shot
    means one shot.
    """

    def __init__(self, sim: Simulator, name: str = "event"):
        self.sim = sim
        self.name = name
        self.fired = False
        self.value: Any = None
        self._waiters: List[Callable[[Any], None]] = []

    def __repr__(self) -> str:
        state = "fired" if self.fired else "pending"
        return "<Event %s (%s)>" % (self.name, state)

    def fire(self, value: Any = None) -> None:
        if self.fired:
            raise RuntimeError("event %s fired twice" % self.name)
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            self.sim._schedule_now(resume, value)

    def _subscribe(self, resume: Callable[[Any], None]) -> Callable[[], None]:
        if self.fired:
            handle = self.sim._schedule_now(resume, self.value)
            return handle.cancel
        self._waiters.append(resume)

        def cancel() -> None:
            if resume in self._waiters:
                self._waiters.remove(resume)

        return cancel


class Condition:
    """A reusable broadcast signal.

    Each ``signal(value)`` wakes all processes waiting *at that moment*.
    Unlike :class:`Event`, a signal with no waiters is lost — exactly the
    semantics of condition variables, so code must re-check its predicate
    in a loop.
    """

    def __init__(self, sim: Simulator, name: str = "condition"):
        self.sim = sim
        self.name = name
        self._waiters: List[Callable[[Any], None]] = []

    def __repr__(self) -> str:
        return "<Condition %s (%d waiting)>" % (self.name, len(self._waiters))

    def signal(self, value: Any = None) -> None:
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            self.sim._schedule_now(resume, value)

    def _subscribe(self, resume: Callable[[Any], None]) -> Callable[[], None]:
        self._waiters.append(resume)

        def cancel() -> None:
            if resume in self._waiters:
                self._waiters.remove(resume)

        return cancel


class QueueClosed(Exception):
    """Raised by ``Queue.get`` after ``close()`` once the queue drains."""


class _QueueGet:
    """Waitable returned by ``Queue.get()``."""

    __slots__ = ("queue",)

    def __init__(self, queue: "Queue"):
        self.queue = queue

    def _subscribe(self, resume: Callable[[Any], None]) -> Callable[[], None]:
        return self.queue._subscribe_get(resume)


class Queue:
    """An unbounded FIFO queue between simulated processes.

    ``put`` never blocks.  ``get()`` returns a waitable; the waiting process
    resumes with the next item.  Items are delivered to getters in FIFO
    order of both items and getters.
    """

    def __init__(self, sim: Simulator, name: str = "queue"):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = collections.deque()
        self._getters: Deque[Callable[[Any], None]] = collections.deque()
        self.closed = False

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return "<Queue %s (%d items, %d getters)>" % (
            self.name, len(self._items), len(self._getters))

    def put(self, item: Any) -> None:
        if self.closed:
            raise QueueClosed("put on closed queue %s" % self.name)
        if self._getters:
            resume = self._getters.popleft()
            self.sim._schedule_now(resume, item)
        else:
            self._items.append(item)

    def get(self) -> _QueueGet:
        return _QueueGet(self)

    def push_front(self, item: Any) -> None:
        """Put an item back at the head of the queue (used by select-style
        peeking that must not consume data)."""
        if self._getters:
            resume = self._getters.popleft()
            self.sim._schedule_now(resume, item)
        else:
            self._items.appendleft(item)

    def get_nowait(self) -> Any:
        """Return the next item or raise LookupError if empty."""
        if not self._items:
            raise LookupError("queue %s is empty" % self.name)
        return self._items.popleft()

    def close(self) -> None:
        """Close the queue: pending getters receive QueueClosed markers."""
        self.closed = True
        while self._getters:
            resume = self._getters.popleft()
            self.sim._schedule_now(resume, _CLOSED)

    def _subscribe_get(self, resume: Callable[[Any], None]) -> Callable[[], None]:
        if self._items:
            item = self._items.popleft()
            handle = self.sim._schedule_now(resume, item)
            return handle.cancel
        if self.closed:
            handle = self.sim._schedule_now(resume, _CLOSED)
            return handle.cancel
        self._getters.append(resume)

        def cancel() -> None:
            if resume in self._getters:
                self._getters.remove(resume)

        return cancel


class _ClosedMarker:
    """Sentinel delivered to getters of a closed, drained queue."""

    def __repr__(self) -> str:
        return "<queue closed>"


_CLOSED = _ClosedMarker()


def is_closed_marker(value: Any) -> bool:
    """True if a value received from ``Queue.get`` means the queue closed."""
    return value is _CLOSED
