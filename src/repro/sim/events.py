"""Synchronization primitives for simulated processes.

All of these are *waitables*: a process suspends on one with ``yield``.

- :class:`Event` — one-shot, value-carrying.  Waiting on an already-fired
  event resumes immediately with the stored value.
- :class:`Condition` — reusable broadcast signal (the paper's protocol code
  awaits ``troupe.status_change``; this is that construct).
- :class:`Queue` — unbounded FIFO with blocking ``get``.

Hot-path design: waiter cancellation is O(1).  A subscription is a
:class:`_Waiter` cell; cancelling it nulls the cell in place (a
*tombstone*) instead of an O(n) ``list.remove``.  Wake-ups skip
tombstones, and a primitive that accumulates cancelled cells without
ever waking (e.g. a transfer-done event polled by a retransmission loop)
compacts its waiter list once tombstones dominate — so repeated
subscribe/cancel cycles cannot grow memory, and wake order over live
waiters is exactly subscription order, as before.
"""

from __future__ import annotations

import collections
from typing import Any, Callable, Deque, List, Optional

from repro.sim.kernel import Simulator

#: tombstones tolerated in a waiter list before an in-place compaction.
_COMPACT_MIN_DEAD = 8


class _Waiter:
    """One waiter cell: ``resume`` is nulled on cancellation or consumption.

    This object is also the cancellation handle the kernel holds while
    the process is suspended (the ``cancel()`` protocol)."""

    __slots__ = ("resume", "owner")

    def __init__(self, owner: Any, resume: Callable[[Any], None]):
        self.owner: Any = owner
        self.resume: Optional[Callable[[Any], None]] = resume

    def cancel(self) -> None:
        if self.resume is not None:
            self.resume = None
            owner = self.owner
            self.owner = None
            owner._waiter_cancelled()


class Event:
    """A one-shot event carrying an optional value.

    ``fire(value)`` wakes every current waiter with ``value`` and causes all
    future waits to resume immediately.  Firing twice is an error: one-shot
    means one shot.
    """

    __slots__ = ("sim", "name", "fired", "value", "_waiters", "_dead")

    def __init__(self, sim: Simulator, name: str = "event"):
        self.sim = sim
        self.name = name
        self.fired = False
        self.value: Any = None
        self._waiters: List[_Waiter] = []
        self._dead = 0

    def __repr__(self) -> str:
        state = "fired" if self.fired else "pending"
        return "<Event %s (%s)>" % (self.name, state)

    def fire(self, value: Any = None) -> None:
        if self.fired:
            raise RuntimeError("event %s fired twice" % self.name)
        self.fired = True
        self.value = value
        waiters = self._waiters
        if waiters:
            self._waiters = []
            self._dead = 0
            schedule_now = self.sim._schedule_now
            for waiter in waiters:
                resume = waiter.resume
                if resume is not None:
                    waiter.resume = None
                    waiter.owner = None
                    schedule_now(resume, value)

    def _subscribe(self, resume: Callable[[Any], None]):
        if self.fired:
            return self.sim._schedule_now(resume, self.value)
        waiter = _Waiter(self, resume)
        self._waiters.append(waiter)
        return waiter

    def _waiter_cancelled(self) -> None:
        self._dead += 1
        if self._dead > _COMPACT_MIN_DEAD \
                and self._dead * 2 >= len(self._waiters):
            self._waiters = [w for w in self._waiters if w.resume is not None]
            self._dead = 0


class Condition:
    """A reusable broadcast signal.

    Each ``signal(value)`` wakes all processes waiting *at that moment*.
    Unlike :class:`Event`, a signal with no waiters is lost — exactly the
    semantics of condition variables, so code must re-check its predicate
    in a loop.
    """

    __slots__ = ("sim", "name", "_waiters", "_dead")

    def __init__(self, sim: Simulator, name: str = "condition"):
        self.sim = sim
        self.name = name
        self._waiters: List[_Waiter] = []
        self._dead = 0

    def __repr__(self) -> str:
        return "<Condition %s (%d waiting)>" % (
            self.name, len(self._waiters) - self._dead)

    def signal(self, value: Any = None) -> None:
        waiters = self._waiters
        if waiters:
            self._waiters = []
            self._dead = 0
            schedule_now = self.sim._schedule_now
            for waiter in waiters:
                resume = waiter.resume
                if resume is not None:
                    waiter.resume = None
                    waiter.owner = None
                    schedule_now(resume, value)

    def _subscribe(self, resume: Callable[[Any], None]):
        waiter = _Waiter(self, resume)
        self._waiters.append(waiter)
        return waiter

    def _waiter_cancelled(self) -> None:
        self._dead += 1
        if self._dead > _COMPACT_MIN_DEAD \
                and self._dead * 2 >= len(self._waiters):
            self._waiters = [w for w in self._waiters if w.resume is not None]
            self._dead = 0


class QueueClosed(Exception):
    """Raised by ``Queue.get`` after ``close()`` once the queue drains."""


class _QueueGet:
    """Waitable returned by ``Queue.get()``."""

    __slots__ = ("queue",)

    def __init__(self, queue: "Queue"):
        self.queue = queue

    def _subscribe(self, resume: Callable[[Any], None]):
        return self.queue._subscribe_get(resume)


class Queue:
    """An unbounded FIFO queue between simulated processes.

    ``put`` never blocks.  ``get()`` returns a waitable; the waiting process
    resumes with the next item.  Items are delivered to getters in FIFO
    order of both items and getters.
    """

    __slots__ = ("sim", "name", "_items", "_getters", "_dead", "closed",
                 "_get_waitable")

    def __init__(self, sim: Simulator, name: str = "queue"):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = collections.deque()
        self._getters: Deque[_Waiter] = collections.deque()
        self._dead = 0
        self.closed = False
        # _QueueGet is stateless (it only forwards _subscribe to this
        # queue), so one shared instance serves every get() call.
        self._get_waitable = _QueueGet(self)

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return "<Queue %s (%d items, %d getters)>" % (
            self.name, len(self._items), len(self._getters) - self._dead)

    def _pop_live_getter(self):
        """The oldest live getter, discarding tombstones — or None."""
        getters = self._getters
        while getters:
            waiter = getters.popleft()
            resume = waiter.resume
            if resume is None:
                self._dead -= 1
                continue
            waiter.resume = None
            waiter.owner = None
            return resume
        return None

    def put(self, item: Any) -> None:
        if self.closed:
            raise QueueClosed("put on closed queue %s" % self.name)
        resume = self._pop_live_getter()
        if resume is not None:
            self.sim._schedule_now(resume, item)
        else:
            self._items.append(item)

    def get(self) -> _QueueGet:
        return self._get_waitable

    def push_front(self, item: Any) -> None:
        """Put an item back at the head of the queue (used by select-style
        peeking that must not consume data)."""
        if self.closed:
            raise QueueClosed("push_front on closed queue %s" % self.name)
        resume = self._pop_live_getter()
        if resume is not None:
            self.sim._schedule_now(resume, item)
        else:
            self._items.appendleft(item)

    def get_nowait(self) -> Any:
        """Return the next item or raise LookupError if empty."""
        if not self._items:
            raise LookupError("queue %s is empty" % self.name)
        return self._items.popleft()

    def close(self) -> None:
        """Close the queue: pending getters receive QueueClosed markers."""
        self.closed = True
        while True:
            resume = self._pop_live_getter()
            if resume is None:
                break
            self.sim._schedule_now(resume, _CLOSED)

    def _subscribe_get(self, resume: Callable[[Any], None]):
        if self._items:
            item = self._items.popleft()
            return self.sim._schedule_now(resume, item)
        if self.closed:
            return self.sim._schedule_now(resume, _CLOSED)
        waiter = _Waiter(self, resume)
        self._getters.append(waiter)
        return waiter

    def _waiter_cancelled(self) -> None:
        self._dead += 1
        if self._dead > _COMPACT_MIN_DEAD \
                and self._dead * 2 >= len(self._getters):
            live = [w for w in self._getters if w.resume is not None]
            self._getters.clear()
            self._getters.extend(live)
            self._dead = 0


class _ClosedMarker:
    """Sentinel delivered to getters of a closed, drained queue."""

    def __repr__(self) -> str:
        return "<queue closed>"


_CLOSED = _ClosedMarker()


def is_closed_marker(value: Any) -> bool:
    """True if a value received from ``Queue.get`` means the queue closed."""
    return value is _CLOSED
