"""Sharded parallel simulation: one world, many kernels.

A single :class:`~repro.harness.World` steps every host through one
event loop.  This module partitions a world's hosts across *shards* —
each shard a full :class:`~repro.sim.kernel.Simulator` kernel, optionally
in its own OS process — and synchronizes them with the classic
conservative-lookahead (Chandy–Misra–Bryant) protocol:

- **Lookahead** is the wire's minimum propagation delay,
  ``NetworkConfig.latency``: every cross-host packet sent at virtual
  time ``u`` is delivered no earlier than ``u + latency``.
- **Window rule**: with ``m = min over shards of the next pending event
  (or incoming delivery) time``, every shard may safely process all
  events strictly before ``bound = m + latency`` — no message generated
  inside the window can land inside it.
- **Null messages**: each round's bound broadcast carries every shard's
  clock advance; the bounded, time-stamped envelope exchange at the
  barrier carries the actual datagrams.

Determinism — the whole point
-----------------------------

A sharded run must be *byte-identical in behaviour* to the same seed's
single-process run, for any shard count.  Three design rules make the
canonical packet-event digest (:class:`PacketDigest`) provably equal:

1. **Every shard builds the entire world** (same construction order,
   same addresses, ports and troupe IDs) but *owns* only its block of
   hosts.  Non-owned ("ghost") replicas are inert: all server machinery
   is event-driven, and workload sessions are ownership-gated
   (:meth:`World.spawn_on`), so a ghost never runs, sends, or draws.
2. **Per-link RNG streams**: :class:`ShardNetwork` replaces the global
   network stream with one ``RandomStream(seed, "link:src>dst")`` per
   directed host pair.  All sends on a link originate on the source
   host's owning shard, so each stream's draw sequence depends only on
   that link's packet order — not on how sends interleave across hosts.
   (The global stream would entangle every host's timing with every
   other's, which no partition could reproduce.)  ``shards=1`` uses the
   same per-link streams and *is* the single-process reference.
3. **Source-authoritative transmit, destination-authoritative deliver**:
   loss/duplication/fault draws and the transit-time draw happen on the
   sending shard (where the source host and installed faults live);
   destination-down / partition-in-flight / port checks happen on the
   delivering shard — the same split of responsibilities the
   single-process :class:`~repro.net.network.Network` has.

Exact timestamp ties between a cross-shard delivery and an unrelated
local event may dispatch in a different order than the single-process
seq-number interleaving.  Distinct-time events cannot influence each
other across hosts (latency > 0), and with the default ``jitter > 0``
exact cross-host float-time ties have measure zero — the digest is
multiset-canonical over (time, kind, src, dst, payload), so same-time
reorderings of independent events do not change it anyway.

Two coordinator modes share one window algorithm: ``inproc`` steps the
shard kernels round-robin in this process (used by the deterministic
CI-gated tables and the tests), ``process`` forks one OS process per
shard and exchanges envelope batches over pipes (wall-clock speedup on
multi-core hosts; byte-identical results).
"""

from __future__ import annotations

import dataclasses
import hashlib
import struct
import time as _time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.runtime import RuntimeConfig
from repro.harness import World
from repro.net.addresses import ProcessAddress
from repro.net.network import Datagram, Network, NetworkConfig
from repro.obs import events as obs_events
from repro.sim.rng import RandomStream

#: Troupe IDs in every shard replica are allocated from this base so the
#: replicas agree; high enough to never collide with the process-global
#: allocator used by ordinary worlds in the same process.
SHARD_TROUPE_ID_BASE = 1 << 32

_DIGEST_MASK = (1 << 256) - 1


# ---------------------------------------------------------------------------
# host partitioning
# ---------------------------------------------------------------------------

def partition_hosts(names: Sequence[str], shards: int) -> List[List[str]]:
    """Split ``names`` into ``shards`` contiguous blocks whose sizes
    differ by at most one (the first ``len % shards`` blocks get the
    extra host).  Contiguity matters: workload builders lay troupes out
    over contiguous machine cells, so aligned shards keep most traffic
    intra-shard."""
    if shards < 1:
        raise ValueError("shards must be >= 1 (got %d)" % shards)
    if shards > len(names):
        raise ValueError("cannot split %d hosts across %d shards"
                         % (len(names), shards))
    base, extra = divmod(len(names), shards)
    blocks = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        blocks.append(list(names[start:start + size]))
        start += size
    return blocks


def shard_of_host(names: Sequence[str], shards: int) -> Dict[str, int]:
    """host name -> owning shard index, for the same partition."""
    owner = {}
    for index, block in enumerate(partition_hosts(names, shards)):
        for name in block:
            owner[name] = index
    return owner


# ---------------------------------------------------------------------------
# cross-shard envelopes and their wire codec
# ---------------------------------------------------------------------------

class Envelope(tuple):
    """A datagram crossing a shard boundary: the delivery time computed
    on the source shard plus the unmodified wire payload."""

    __slots__ = ()

    def __new__(cls, deliver_at: float, src: ProcessAddress,
                dst: ProcessAddress, payload: bytes):
        return tuple.__new__(cls, (deliver_at, src, dst, payload))

    deliver_at = property(lambda self: self[0])
    src = property(lambda self: self[1])
    dst = property(lambda self: self[2])
    payload = property(lambda self: self[3])


#: record header: deliver_at, src host len, src port, dst host len,
#: dst port, payload len.
_ENV_HEADER = struct.Struct("!dHIHII")


def encode_envelope(env: Envelope) -> bytes:
    """One length-delimited record.  The payload rides verbatim — it is
    already the zero-copy wire encoding the endpoints produced; the
    codec frames it, it never re-serializes it."""
    src_host = env[1].host.encode("utf-8")
    dst_host = env[2].host.encode("utf-8")
    payload = env[3]
    return b"".join((
        _ENV_HEADER.pack(env[0], len(src_host), env[1].port,
                         len(dst_host), env[2].port, len(payload)),
        src_host, dst_host, payload))


def encode_envelopes(envelopes: Sequence[Envelope]) -> bytes:
    """A batch: concatenated records (the per-window pipe message)."""
    return b"".join(encode_envelope(env) for env in envelopes)


def decode_envelopes(blob: bytes) -> List[Envelope]:
    """Decode a batch.  Host names and payloads are sliced out of one
    memoryview over the blob; payloads are materialized as bytes once
    (the pipe transfer already copied them into this buffer)."""
    view = memoryview(blob)
    offset = 0
    out = []
    header = _ENV_HEADER
    size = header.size
    while offset < len(blob):
        deliver_at, src_len, src_port, dst_len, dst_port, pay_len = \
            header.unpack_from(view, offset)
        offset += size
        src_host = str(view[offset:offset + src_len], "utf-8")
        offset += src_len
        dst_host = str(view[offset:offset + dst_len], "utf-8")
        offset += dst_len
        payload = bytes(view[offset:offset + pay_len])
        offset += pay_len
        out.append(Envelope(deliver_at, ProcessAddress(src_host, src_port),
                            ProcessAddress(dst_host, dst_port), payload))
    return out


# ---------------------------------------------------------------------------
# the canonical packet-event digest
# ---------------------------------------------------------------------------

class PacketDigest:
    """Order-insensitive canonical digest over ``net.*`` bus events.

    Each event canonicalizes to one line; the digest is the sum of the
    lines' sha256 values mod 2**256 — commutative, so shard partials
    merge without shipping the lines, and equal event *multisets* give
    equal digests regardless of same-timestamp dispatch order.  Process
    names are deliberately absent (kernel-local spawn counters differ
    between sharded and single-process runs); payloads enter by hash."""

    def __init__(self, sim):
        self._bus = sim.bus
        self._sub = sim.bus.subscribe(self._on_event, "net.")
        self._sum = 0
        self.events = 0

    def _on_event(self, event) -> None:
        kind = event.kind
        if kind == "net.send":
            payload = event.payload
            extra = "%d:%s" % (len(payload), hashlib.sha256(
                bytes(payload)).hexdigest()[:16])
        elif kind == "net.deliver":
            extra = str(event.size)
        elif kind == "net.drop":
            extra = event.reason
        else:
            extra = ""
        line = "%r %s %s>%s %s" % (event.t, kind, event.src, event.dst,
                                   extra)
        self._sum = (self._sum + int.from_bytes(
            hashlib.sha256(line.encode("utf-8")).digest(), "big")) \
            & _DIGEST_MASK
        self.events += 1

    def close(self) -> None:
        self._bus.unsubscribe(self._sub)

    @property
    def partial(self) -> int:
        """The raw running sum, for cross-process merging."""
        return self._sum

    def digest(self) -> str:
        return "%064x" % self._sum


def merge_digests(partials: Sequence[int]) -> str:
    return "%064x" % (sum(partials) & _DIGEST_MASK)


# ---------------------------------------------------------------------------
# the sharded wire
# ---------------------------------------------------------------------------

class ShardNetwork(Network):
    """A :class:`Network` owning a subset of its hosts.

    Draws come from per-link RNG streams (see the module docstring);
    datagrams for non-owned destinations leave through :attr:`outbox`
    as time-stamped envelopes instead of being scheduled locally.
    ``owned=None`` owns everything — that configuration is the
    single-process reference run."""

    def __init__(self, sim, seed: int = 0,
                 config: Optional[NetworkConfig] = None,
                 owned: Optional[frozenset] = None):
        super().__init__(sim, seed=seed, config=config)
        if self.config.latency <= 0.0:
            raise ValueError(
                "sharded simulation needs positive link latency for "
                "lookahead (got %r)" % self.config.latency)
        self.owned = owned
        self.outbox: List[Envelope] = []
        self.cross_shard_sent = 0
        self.cross_shard_received = 0
        self._seed = seed
        self._link_rngs: Dict[Tuple[str, str], RandomStream] = {}

    def _link_rng(self, src: str, dst: str) -> RandomStream:
        key = (src, dst)
        rng = self._link_rngs.get(key)
        if rng is None:
            rng = RandomStream(self._seed, "link:%s>%s" % (src, dst))
            self._link_rngs[key] = rng
        return rng

    def _transmit(self, datagram: Datagram) -> None:
        # Mirrors Network._transmit decision-for-decision; the two
        # differences are the per-link rng and the ownership routing at
        # the bottom.  Keep the structures in sync.
        bus = self.sim.bus
        if bus.active:
            bus.emit(obs_events.PacketSent(
                t=self.sim.now, src=datagram.src, dst=datagram.dst,
                payload=datagram.payload))
        src_host = self.hosts.get(datagram.src.host)
        dst_host = self.hosts.get(datagram.dst.host)
        if src_host is None or dst_host is None:
            self._drop(datagram, "no-host")
            return
        if not src_host.up:
            self._drop(datagram, "host-down")
            return
        if not self.reachable(datagram.src.host, datagram.dst.host):
            self._drop(datagram, "partition")
            return
        rng = self._link_rng(datagram.src.host, datagram.dst.host)
        if rng.chance(self.config.loss_probability):
            self._drop(datagram, "loss")
            return
        copies = 1
        if rng.chance(self.config.duplicate_probability):
            copies = 2
            self.packets_duplicated += 1
            if bus.active:
                bus.emit(obs_events.PacketDuplicated(
                    t=self.sim.now, src=datagram.src, dst=datagram.dst))
        extra_delay = 0.0
        for fault in self._faults:
            if not fault.matches(datagram.src.host, datagram.dst.host):
                continue
            if fault.loss and rng.chance(fault.loss):
                self._drop(datagram, "fault-loss")
                return
            if copies == 1 and fault.duplicate \
                    and rng.chance(fault.duplicate):
                copies = 2
                self.packets_duplicated += 1
                if bus.active:
                    bus.emit(obs_events.PacketDuplicated(
                        t=self.sim.now, src=datagram.src, dst=datagram.dst))
            extra_delay += fault.extra_delay
            if fault.reorder and rng.chance(fault.reorder):
                extra_delay += rng.uniform(0.0, fault.reorder_hold)
        local = self.owned is None or datagram.dst.host in self.owned
        for _ in range(copies):
            delay = extra_delay + self.config.transit_time(
                datagram.size, rng)
            if local:
                self.sim.schedule(delay, self._deliver, datagram)
            else:
                self.cross_shard_sent += 1
                self.outbox.append(Envelope(
                    self.sim.now + delay, datagram.src, datagram.dst,
                    datagram.payload))

    def take_outbox(self) -> List[Envelope]:
        out = self.outbox
        self.outbox = []
        return out

    def inject(self, env: Envelope) -> None:
        """Schedule delivery of an envelope received from another shard.
        The lookahead protocol guarantees the delivery time has not
        passed; a violation here is a coordinator bug, not recoverable."""
        self.cross_shard_received += 1
        if env[0] < self.sim.now:
            raise RuntimeError(
                "lookahead violated: envelope for t=%r arrived at t=%r"
                % (env[0], self.sim.now))
        # schedule_at, not schedule(env[0] - now): re-deriving the
        # absolute time from a delta can drift by an ulp, and the digest
        # demands the exact delivery timestamp the source shard computed.
        self.sim.schedule_at(env[0], self._deliver,
                             Datagram(env[1], env[2], env[3]))


class ShardedWorld(World):
    """A full replica of the world that owns one block of its hosts."""

    def __init__(self, machines: int = 6, seed: int = 0,
                 shard_index: int = 0, shard_count: int = 1, **kwargs):
        if not 0 <= shard_index < shard_count:
            raise ValueError("shard_index %d out of range for %d shards"
                             % (shard_index, shard_count))
        self.shard_index = shard_index
        self.shard_count = shard_count
        kwargs.setdefault("troupe_id_base", SHARD_TROUPE_ID_BASE)
        super().__init__(machines=machines, seed=seed, **kwargs)

    def _make_network(self, seed, net_config, machine_names):
        owned = None
        if self.shard_count > 1:
            owned = frozenset(
                partition_hosts(machine_names,
                                self.shard_count)[self.shard_index])
        return ShardNetwork(self.sim, seed=seed, config=net_config,
                            owned=owned)

    def owns(self, host: str) -> bool:
        owned = self.net.owned
        return owned is None or host in owned

    def endpoint_stats(self) -> Dict[str, float]:
        """Owned runtimes only: ghost replicas never run, but their
        endpoints exist (and count their construction-time daemon spawn),
        so summing them across shards would overcount.  Every runtime is
        owned by exactly one shard, so the per-shard sums add up to the
        single-process totals."""
        totals: Dict[str, float] = {}
        for runtime in self.runtimes:
            if not self.owns(runtime.process.machine.name):
                continue
            for key, value in runtime.endpoint.stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals


# ---------------------------------------------------------------------------
# shards and the window coordinator
# ---------------------------------------------------------------------------

#: builder(world) populates a (sharded) world: troupes first, then
#: ownership-gated workload sessions.  It runs identically in every
#: shard; only ownership gates differ.
WorldBuilder = Callable[[World], None]


class Shard:
    """One shard: a full world replica plus its digest collector."""

    def __init__(self, index: int, count: int, builder: WorldBuilder,
                 machines: int, seed: int,
                 net_config: Optional[NetworkConfig],
                 runtime_config: Optional[RuntimeConfig],
                 horizon: float):
        self.index = index
        self.horizon = horizon
        self.world = ShardedWorld(
            machines=machines, seed=seed, shard_index=index,
            shard_count=count, net_config=net_config,
            runtime_config=runtime_config)
        self.digest = PacketDigest(self.world.sim)
        self.windows = 0
        builder(self.world)

    def next_time(self) -> Optional[float]:
        return self.world.sim.next_event_time()

    def advance(self, bound: float) -> List[Envelope]:
        """Process every event strictly before ``bound`` (and within the
        horizon); return the envelopes generated for other shards."""
        sim = self.world.sim
        horizon = self.horizon
        while True:
            t = sim.next_event_time()
            if t is None or t >= bound or t > horizon:
                break
            sim.run(until=t)
        self.windows += 1
        return self.world.net.take_outbox()

    def summary(self) -> dict:
        world = self.world
        net = world.net
        return {
            "digest_partial": self.digest.partial,
            "events": self.digest.events,
            "windows": self.windows,
            "counters": dict(world.counters),
            "samples": {k: list(v) for k, v in world.samples.items()},
            "endpoint_stats": world.endpoint_stats(),
            "network": {
                "packets_sent": net.packets_sent,
                "packets_delivered": net.packets_delivered,
                "packets_dropped": net.packets_dropped,
                "packets_duplicated": net.packets_duplicated,
                "bytes_sent": net.bytes_sent,
                "multicasts_sent": net.multicasts_sent,
            },
            "cross_shard_sent": net.cross_shard_sent,
            "cross_shard_received": net.cross_shard_received,
        }


@dataclasses.dataclass
class ShardedRunResult:
    """Merged outcome of a sharded run — every field except
    ``wall_seconds`` (and ``mode``) is deterministic and identical for
    any shard count on the same seed."""

    shards: int
    mode: str
    horizon: float
    digest: str
    events: int
    windows: int
    cross_shard_messages: int
    counters: Dict[str, float]
    samples: Dict[str, List[float]]
    endpoint_stats: Dict[str, float]
    network: Dict[str, float]
    wall_seconds: float

    def percentile(self, key: str, q: float) -> float:
        values = sorted(self.samples.get(key, ()))
        if not values:
            return 0.0
        return values[min(len(values) - 1, int(q * len(values)))]

    def to_json_dict(self) -> dict:
        """Deterministic fields only — two runs of the same seed must
        serialize byte-identically (the CI shard-smoke contract), so the
        wall clock stays out."""
        return {
            "shards": self.shards,
            "horizon": self.horizon,
            "digest": self.digest,
            "events": self.events,
            "windows": self.windows,
            "cross_shard_messages": self.cross_shard_messages,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "endpoint_stats": {k: self.endpoint_stats[k]
                               for k in sorted(self.endpoint_stats)},
            "network": {k: self.network[k] for k in sorted(self.network)},
        }


def _merge_summaries(summaries: List[dict], shards: int, mode: str,
                     horizon: float, wall: float) -> ShardedRunResult:
    counters: Dict[str, float] = {}
    samples: Dict[str, List[float]] = {}
    endpoint: Dict[str, float] = {}
    network: Dict[str, float] = {}
    for summary in summaries:
        for key, value in summary["counters"].items():
            counters[key] = counters.get(key, 0) + value
        for key, values in summary["samples"].items():
            samples.setdefault(key, []).extend(values)
        for key, value in summary["endpoint_stats"].items():
            endpoint[key] = endpoint.get(key, 0) + value
        for key, value in summary["network"].items():
            network[key] = network.get(key, 0) + value
    for values in samples.values():
        values.sort()
    return ShardedRunResult(
        shards=shards, mode=mode, horizon=horizon,
        digest=merge_digests([s["digest_partial"] for s in summaries]),
        events=sum(s["events"] for s in summaries),
        windows=max(s["windows"] for s in summaries),
        cross_shard_messages=sum(s["cross_shard_sent"] for s in summaries),
        counters=counters, samples=samples, endpoint_stats=endpoint,
        network=network, wall_seconds=wall)


def run_sharded(builder: WorldBuilder, *, machines: int, horizon: float,
                shards: int = 1, seed: int = 0,
                net_config: Optional[NetworkConfig] = None,
                runtime_config: Optional[RuntimeConfig] = None,
                mode: str = "inproc") -> ShardedRunResult:
    """Run ``builder``'s workload to the virtual-time ``horizon`` across
    ``shards`` kernels and merge the results.

    ``mode="inproc"`` steps the shards round-robin in this process;
    ``mode="process"`` forks one OS process per shard (falling back to
    inproc where fork is unavailable).  Both produce identical results;
    only the wall clock differs."""
    if mode not in ("inproc", "process"):
        raise ValueError("mode must be 'inproc' or 'process' (got %r)"
                         % mode)
    if horizon <= 0:
        raise ValueError("horizon must be positive (got %r)" % horizon)
    config = net_config or NetworkConfig()
    if mode == "process" and shards > 1:
        import multiprocessing
        if "fork" in multiprocessing.get_all_start_methods():
            return _run_sharded_processes(
                builder, machines=machines, horizon=horizon, shards=shards,
                seed=seed, net_config=net_config,
                runtime_config=runtime_config)
        mode = "inproc"  # fall back: identical results, no parallelism
    start = _time.perf_counter()
    shard_objs = [Shard(i, shards, builder, machines, seed, net_config,
                        runtime_config, horizon) for i in range(shards)]
    names = ["host%d" % i for i in range(machines)]
    owner = shard_of_host(names, shards)
    lookahead = config.latency
    while True:
        times = [t for t in (s.next_time() for s in shard_objs)
                 if t is not None and t <= horizon]
        if not times:
            break
        bound = min(times) + lookahead
        outbound: List[Envelope] = []
        for shard in shard_objs:
            outbound.extend(shard.advance(bound))
        for env in outbound:
            shard_objs[owner[env[2].host]].world.net.inject(env)
    wall = _time.perf_counter() - start
    return _merge_summaries([s.summary() for s in shard_objs], shards,
                            "inproc", horizon, wall)


# -- the multiprocess coordinator -------------------------------------------

def _shard_child(conn, index: int, count: int, builder: WorldBuilder,
                 machines: int, seed: int,
                 net_config: Optional[NetworkConfig],
                 runtime_config: Optional[RuntimeConfig],
                 horizon: float) -> None:
    """Child body: build the shard, then serve coordinator windows.
    Protocol (parent -> child / child -> parent):

    - ``("window", bound, blob)`` -> ``("done", next_time, {dst: blob})``
    - ``("finish",)`` -> ``("result", summary)``
    """
    try:
        shard = Shard(index, count, builder, machines, seed, net_config,
                      runtime_config, horizon)
        names = ["host%d" % i for i in range(machines)]
        owner = shard_of_host(names, count)
        conn.send(("ready", shard.next_time()))
        while True:
            message = conn.recv()
            if message[0] == "finish":
                conn.send(("result", shard.summary()))
                return
            _, bound, blob = message
            if blob:
                for env in decode_envelopes(blob):
                    shard.world.net.inject(env)
            outbound = shard.advance(bound)
            batches: Dict[int, List[Envelope]] = {}
            for env in outbound:
                batches.setdefault(owner[env[2].host], []).append(env)
            # (floor, blob) per destination: the floor spares the parent
            # from decoding every envelope just to learn the clock bound.
            conn.send(("done", shard.next_time(),
                       {dst: (min(env[0] for env in envs),
                              encode_envelopes(envs))
                        for dst, envs in batches.items()}))
    except BaseException as exc:  # noqa: BLE001 — report, then die
        try:
            conn.send(("error", "%s: %s" % (type(exc).__name__, exc)))
        except Exception:
            pass
        raise


def _run_sharded_processes(builder: WorldBuilder, *, machines: int,
                           horizon: float, shards: int, seed: int,
                           net_config: Optional[NetworkConfig],
                           runtime_config: Optional[RuntimeConfig]
                           ) -> ShardedRunResult:
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    start = _time.perf_counter()
    pipes = []
    procs = []
    for index in range(shards):
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_shard_child,
            args=(child_conn, index, shards, builder, machines, seed,
                  net_config, runtime_config, horizon),
            daemon=True)
        proc.start()
        child_conn.close()
        pipes.append(parent_conn)
        procs.append(proc)
    config = net_config or NetworkConfig()
    lookahead = config.latency

    def _recv(conn):
        message = conn.recv()
        if message[0] == "error":
            raise RuntimeError("shard child failed: %s" % message[1])
        return message

    try:
        times: List[Optional[float]] = [None] * shards
        for index, conn in enumerate(pipes):
            _, times[index] = _recv(conn)
        #: earliest not-yet-delivered envelope per shard (clock floor).
        pending_floor: List[Optional[float]] = [None] * shards
        inboxes: List[List[bytes]] = [[] for _ in range(shards)]
        while True:
            live = [t for pair in zip(times, pending_floor) for t in pair
                    if t is not None and t <= horizon]
            if not live:
                break
            bound = min(live) + lookahead
            for index, conn in enumerate(pipes):
                conn.send(("window", bound, b"".join(inboxes[index])))
                inboxes[index] = []
                pending_floor[index] = None
            for index, conn in enumerate(pipes):
                _, times[index], batches = _recv(conn)
                for dst, (floor, blob) in batches.items():
                    inboxes[dst].append(blob)
                    if pending_floor[dst] is None \
                            or floor < pending_floor[dst]:
                        pending_floor[dst] = floor
        summaries = []
        for conn in pipes:
            conn.send(("finish",))
        for conn in pipes:
            summaries.append(_recv(conn)[1])
    finally:
        for conn in pipes:
            conn.close()
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():
                proc.terminate()
    wall = _time.perf_counter() - start
    return _merge_summaries(summaries, shards, "process", horizon, wall)
