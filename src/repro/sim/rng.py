"""Seeded random-number streams.

Every stochastic component (network loss, exponential service times,
failure/repair processes, backoff jitter) draws from its own named stream so
that adding randomness to one component never perturbs another.  This is the
standard common-random-numbers discipline for simulation experiments.
"""

from __future__ import annotations

import random
from typing import Sequence


class RandomStream:
    """A named, independently seeded random stream."""

    def __init__(self, seed: int, name: str = ""):
        # Derive the child seed from (seed, name) deterministically.
        self.name = name
        self._rng = random.Random("%d\x00%s" % (seed, name))

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return self._rng.uniform(low, high)

    def random(self) -> float:
        return self._rng.random()

    def expovariate(self, rate: float) -> float:
        """An exponential variate with the given rate (mean ``1/rate``)."""
        return self._rng.expovariate(rate)

    def randint(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def choice(self, seq: Sequence):
        return self._rng.choice(seq)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def sample(self, seq: Sequence, k: int) -> list:
        return self._rng.sample(seq, k)

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._rng.random() < probability

    def fork(self, name: str) -> "RandomStream":
        """Derive a sub-stream, independent of this one."""
        child = RandomStream.__new__(RandomStream)
        child.name = "%s/%s" % (self.name, name)
        child._rng = random.Random("%r\x00%s" % (self._rng.random(), name))
        return child
