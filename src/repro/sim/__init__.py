"""Deterministic discrete-event simulation kernel.

This package provides the execution substrate for the reproduction: a
simulator with a virtual clock, lightweight processes written as Python
generators, and the synchronization primitives (events, conditions, queues)
that the protocol implementations are built from.

The kernel is deterministic: given the same seed and the same program, every
run produces the identical event ordering.  Ties in the event queue are
broken by insertion order.
"""

from repro.sim.kernel import (
    AnyOf,
    Interrupted,
    Process,
    ProcessKilled,
    SimulationError,
    Simulator,
    Sleep,
)
from repro.sim.events import Condition, Event, Queue, QueueClosed
from repro.sim.rng import RandomStream
from repro.sim.timers import Timer, TimerService

__all__ = [
    "AnyOf",
    "Condition",
    "Event",
    "Interrupted",
    "Process",
    "ProcessKilled",
    "Queue",
    "QueueClosed",
    "RandomStream",
    "SimulationError",
    "Simulator",
    "Sleep",
    "Timer",
    "TimerService",
]
