"""Binary exponential back-off for retrying aborted transactions (§5.3.1).

"An aborted transaction is delayed for a randomly chosen interval before
being retried.  If successive retries are required, the mean delay is
doubled each time."  (The paper borrows the idea from Ethernet's
collision resolution.)
"""

from __future__ import annotations

from repro.sim.rng import RandomStream


class BinaryExponentialBackoff:
    """Produces the delay to wait before each successive retry."""

    def __init__(self, rng: RandomStream, initial_mean: float = 20.0,
                 max_mean: float = 5000.0):
        if initial_mean <= 0:
            raise ValueError("initial mean must be positive")
        self.rng = rng
        self.initial_mean = initial_mean
        self.max_mean = max_mean
        self.attempt = 0

    def next_delay(self) -> float:
        """The delay before the next retry: uniform in [0, 2*mean), with
        the mean doubling on each successive retry."""
        mean = min(self.initial_mean * (2 ** self.attempt), self.max_mean)
        self.attempt += 1
        return self.rng.uniform(0.0, 2.0 * mean)

    def reset(self) -> None:
        """Call after a success so the next failure starts small again."""
        self.attempt = 0
