"""Two-phase locking (§2.3.1) with nested-transaction lock inheritance.

The simplest two-phase locking associates a lock with each shared object;
this table supports shared (read) and exclusive (write) modes, FIFO
waiting, and the Moss rules for nested transactions: a transaction may
acquire a lock whose conflicting holders are all its ancestors, a
committing subtransaction's locks are inherited by its parent, and an
aborting subtransaction's locks are released.

The table also exposes the *waits-for* relation (§2.3.1): "T waits for T'"
when T waits for a lock held by T'; a cycle in it is a deadlock.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional, Set

from repro.obs import events as obs_events
from repro.sim.events import Event
from repro.sim.kernel import Simulator

SHARED = "shared"
EXCLUSIVE = "exclusive"


class TransactionAborted(Exception):
    """Raised inside transaction code when the transaction was aborted
    (deadlock victim, explicit abort, or commit refused)."""

    def __init__(self, txn_id: Any, reason: str = ""):
        super().__init__("transaction %s aborted%s" % (
            txn_id, ": " + reason if reason else ""))
        self.txn_id = txn_id
        self.reason = reason


def _conflicts(mode_a: str, mode_b: str) -> bool:
    return mode_a == EXCLUSIVE or mode_b == EXCLUSIVE


class _Waiter:
    __slots__ = ("txn", "mode", "event")

    def __init__(self, txn, mode: str, event: Event):
        self.txn = txn
        self.mode = mode
        self.event = event


class _ObjectLock:
    """The lock state of one shared object."""

    def __init__(self, key: Hashable):
        self.key = key
        self.holders: Dict[Any, str] = {}   # txn -> mode
        self.queue: List[_Waiter] = []


class LockTable:
    """All object locks of one troupe member, plus the waits-for graph.

    ``ancestors`` maps a transaction to the set of its ancestors (for the
    Moss compatibility rule); for flat transactions pass the default,
    which treats every transaction as unrelated.
    """

    def __init__(self, sim: Simulator,
                 ancestors: Optional[Callable[[Any], Set[Any]]] = None):
        self.sim = sim
        self._locks: Dict[Hashable, _ObjectLock] = {}
        self._held_by: Dict[Any, Set[Hashable]] = {}
        self._ancestors = ancestors or (lambda txn: set())
        #: called whenever a transaction blocks on a lock — the hook an
        #: event-driven deadlock detector arms itself from.
        self.block_listeners: List[Callable[[], None]] = []

    # -- acquisition -----------------------------------------------------

    def acquire(self, txn, key: Hashable, mode: str):
        """Generator: block until ``txn`` holds ``key`` in ``mode``.

        Raises :class:`TransactionAborted` if the transaction is aborted
        while waiting (deadlock victim).
        """
        if mode not in (SHARED, EXCLUSIVE):
            raise ValueError("unknown lock mode: %r" % mode)
        lock = self._locks.setdefault(key, _ObjectLock(key))
        wait_started = None
        while not self._grantable(lock, txn, mode):
            if wait_started is None:
                wait_started = self.sim.now
                if self.sim.bus.active:
                    self.sim.bus.emit(obs_events.LockWait(
                        t=self.sim.now, txn=str(txn), key=repr(key),
                        mode=mode,
                        holders=tuple(sorted(str(h)
                                             for h in lock.holders))))
            waiter = _Waiter(txn, mode, Event(self.sim, "lock-%r" % (key,)))
            lock.queue.append(waiter)
            for listener in self.block_listeners:
                listener()
            outcome = yield waiter.event
            if outcome == "aborted":
                raise TransactionAborted(txn, "aborted while waiting for %r"
                                         % (key,))
        self._grant(lock, txn, mode)
        if wait_started is not None and self.sim.bus.active:
            self.sim.bus.emit(obs_events.LockGranted(
                t=self.sim.now, txn=str(txn), key=repr(key), mode=mode,
                waited=self.sim.now - wait_started))

    def try_acquire(self, txn, key: Hashable, mode: str) -> bool:
        """Non-blocking acquire; True on success."""
        lock = self._locks.setdefault(key, _ObjectLock(key))
        if self._grantable(lock, txn, mode):
            self._grant(lock, txn, mode)
            return True
        return False

    def _grantable(self, lock: _ObjectLock, txn, mode: str) -> bool:
        ancestors = self._ancestors(txn)
        for holder, held_mode in lock.holders.items():
            if holder == txn:
                if mode == EXCLUSIVE and held_mode == SHARED:
                    # Upgrade: allowed only if no other conflicting holder.
                    continue
                return True  # already held in a sufficient or equal mode
            if holder in ancestors:
                continue  # Moss rule: conflicts with ancestors don't count
            if _conflicts(mode, held_mode):
                return False
        return True

    def _grant(self, lock: _ObjectLock, txn, mode: str) -> None:
        current = lock.holders.get(txn)
        if current == EXCLUSIVE:
            mode = EXCLUSIVE
        lock.holders[txn] = mode
        self._held_by.setdefault(txn, set()).add(lock.key)

    # -- release -----------------------------------------------------------

    def release_all(self, txn) -> None:
        """Release every lock held by ``txn`` (commit or abort of a
        top-level transaction): strict two-phase locking."""
        for key in self._held_by.pop(txn, set()):
            lock = self._locks.get(key)
            if lock is None:
                continue
            lock.holders.pop(txn, None)
            self._wake(lock)

    def inherit_all(self, child, parent) -> None:
        """Moss: a committing subtransaction's locks pass to its parent."""
        for key in self._held_by.pop(child, set()):
            lock = self._locks.get(key)
            if lock is None:
                continue
            child_mode = lock.holders.pop(child, SHARED)
            parent_mode = lock.holders.get(parent)
            if parent_mode != EXCLUSIVE:
                lock.holders[parent] = (
                    EXCLUSIVE if child_mode == EXCLUSIVE else
                    parent_mode or child_mode)
            self._held_by.setdefault(parent, set()).add(key)
            self._wake(lock)

    def abort_waiter(self, txn) -> None:
        """Wake ``txn`` with an abort if it is blocked on any lock."""
        for lock in self._locks.values():
            for waiter in list(lock.queue):
                if waiter.txn == txn:
                    lock.queue.remove(waiter)
                    if not waiter.event.fired:
                        waiter.event.fire("aborted")

    def _wake(self, lock: _ObjectLock) -> None:
        """Wake waiters whose requests are now grantable, FIFO."""
        for waiter in list(lock.queue):
            if self._grantable(lock, waiter.txn, waiter.mode):
                lock.queue.remove(waiter)
                if not waiter.event.fired:
                    waiter.event.fire("granted")
            elif waiter.mode == EXCLUSIVE:
                # FIFO fairness: a blocked exclusive waiter blocks later ones.
                break

    # -- introspection ----------------------------------------------------

    def holders(self, key: Hashable) -> Dict[Any, str]:
        lock = self._locks.get(key)
        return dict(lock.holders) if lock else {}

    def held_keys(self, txn) -> Set[Hashable]:
        return set(self._held_by.get(txn, set()))

    def waits_for(self) -> Dict[Any, Set[Any]]:
        """The waits-for relation: waiter -> set of conflicting holders."""
        graph: Dict[Any, Set[Any]] = {}
        for lock in self._locks.values():
            for waiter in lock.queue:
                ancestors = self._ancestors(waiter.txn)
                blockers = {
                    holder for holder, held_mode in lock.holders.items()
                    if holder != waiter.txn and holder not in ancestors
                    and _conflicts(waiter.mode, held_mode)}
                if blockers:
                    graph.setdefault(waiter.txn, set()).update(blockers)
        return graph
