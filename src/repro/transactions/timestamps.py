"""Timestamp-ordered concurrency control: wound-wait (§5.4).

The starvation-free scheme needs "the same deterministic concurrency
control algorithm at each troupe member", where deterministic means "the
serialization order of a set of concurrent transactions is a well-defined
function of the order in which they arrived".  The paper names two
candidates: serial execution in chronological order (trivial, no
concurrency) and "the combination of time stamps and two-phase locking
described by Rosenkrantz et al." — wound-wait, implemented here.

Rules, for a transaction T requesting a lock held conflictingly by H:

- if T is *older* (smaller timestamp) it **wounds** H: H is aborted and
  restarted later, T takes the lock;
- if T is *younger* it **waits**.

Older transactions never wait behind younger ones, so the waits-for graph
cannot contain a cycle: wound-wait is deadlock-free, and the commit order
of conflicting transactions is a function of their timestamps alone.
Feeding it timestamps agreed via ordered broadcast makes every troupe
member serialize identically with no communication among members.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional

from repro.sim.kernel import Simulator, Sleep
from repro.transactions.lightweight import Transaction, TransactionManager
from repro.transactions.locks import (
    EXCLUSIVE,
    SHARED,
    TransactionAborted,
    _conflicts,
)


class WoundWaitScheduler:
    """Timestamped lock acquisition over a TransactionManager's table.

    Transactions register with :meth:`assign` before acquiring; the
    timestamp is typically the ordered-broadcast acceptance time (§5.4),
    or any value agreed identically by all troupe members.
    """

    def __init__(self, manager: TransactionManager,
                 retry_interval: float = 5.0):
        self.manager = manager
        self.sim: Simulator = manager.sim
        self.retry_interval = retry_interval
        self._timestamps: Dict[Any, float] = {}
        self.wounds = 0

    def assign(self, txn: Transaction, timestamp: float) -> None:
        if txn in self._timestamps:
            raise ValueError("transaction already timestamped: %r" % txn)
        self._timestamps[txn] = timestamp

    def timestamp(self, txn: Transaction) -> Optional[float]:
        return self._timestamps.get(txn)

    def forget(self, txn: Transaction) -> None:
        self._timestamps.pop(txn, None)

    # -- acquisition under wound-wait ----------------------------------

    def acquire(self, txn: Transaction, key: Hashable, mode: str):
        """Generator: acquire under wound-wait; may abort *other*
        transactions (wounds) but never deadlocks.

        Raises TransactionAborted if ``txn`` itself is wounded while
        waiting.
        """
        my_ts = self._timestamps.get(txn)
        if my_ts is None:
            raise ValueError("transaction has no timestamp: %r" % txn)
        locks = self.manager.locks
        while True:
            txn.require_active()
            if locks.try_acquire(txn, key, mode):
                return
            # Conflicting holders: wound every younger one.
            wounded_any = False
            for holder, held_mode in list(locks.holders(key).items()):
                if holder is txn or not _conflicts(mode, held_mode):
                    continue
                holder_ts = self._timestamps.get(holder)
                if holder_ts is None:
                    continue  # not under timestamp control: just wait
                if my_ts < holder_ts:
                    self.manager.abort(holder, "wounded by older transaction")
                    self.wounds += 1
                    wounded_any = True
            if wounded_any:
                continue  # the lock may be free now
            # We are the younger one: wait and retry.
            yield Sleep(self.retry_interval)

    def read(self, store, txn: Transaction, key: Hashable):
        """Generator: store read under wound-wait locking."""
        yield from self.acquire(txn, key, SHARED)
        return store._visible(txn, key)

    def write(self, store, txn: Transaction, key: Hashable, value) :
        """Generator: store write under wound-wait locking."""
        yield from self.acquire(txn, key, EXCLUSIVE)
        txn.writes[key] = value
