"""Replicated lightweight transactions (Chapter 5).

Troupes require more than serializability: all members must serialize
transactions in the *same order* (§5.2.1), without communicating among
themselves.  This package provides:

- :mod:`repro.transactions.locks` — two-phase locking with shared and
  exclusive modes and a waits-for graph;
- :mod:`repro.transactions.deadlock` — cycle detection and victim
  selection;
- :mod:`repro.transactions.lightweight` — nested lightweight transactions
  operating entirely in volatile memory (§5.2: troupes mask partial
  failures, so the permanence machinery of conventional transactions is
  unnecessary);
- :mod:`repro.transactions.backoff` — binary exponential back-off for
  retrying aborted transactions (§5.3.1);
- :mod:`repro.transactions.commit` — the troupe commit protocol (§5.3):
  optimistic, generic, converts divergent serialization orders into
  deadlocks which are then broken by abort-and-retry;
- :mod:`repro.transactions.broadcast` — the starvation-free ordered
  broadcast protocol (§5.4, Figure 5.1) with deterministic local
  concurrency control.
"""

from repro.transactions.locks import (
    EXCLUSIVE,
    LockTable,
    SHARED,
    TransactionAborted,
)
from repro.transactions.deadlock import DeadlockDetector, find_cycle
from repro.transactions.lightweight import (
    Transaction,
    TransactionManager,
    TransactionStatus,
    TransactionalStore,
)
from repro.transactions.backoff import BinaryExponentialBackoff
from repro.transactions.commit import (
    CommitCoordinator,
    CommitParticipant,
    READY_TO_COMMIT_PROC,
)
from repro.transactions.broadcast import (
    OrderedBroadcastServer,
    atomic_broadcast,
    GET_PROPOSED_TIME_PROC,
    ACCEPT_TIME_PROC,
)
from repro.transactions.timestamps import WoundWaitScheduler

__all__ = [
    "ACCEPT_TIME_PROC",
    "BinaryExponentialBackoff",
    "CommitCoordinator",
    "CommitParticipant",
    "DeadlockDetector",
    "EXCLUSIVE",
    "GET_PROPOSED_TIME_PROC",
    "LockTable",
    "OrderedBroadcastServer",
    "READY_TO_COMMIT_PROC",
    "SHARED",
    "Transaction",
    "TransactionAborted",
    "TransactionManager",
    "TransactionStatus",
    "TransactionalStore",
    "WoundWaitScheduler",
    "atomic_broadcast",
    "find_cycle",
]
