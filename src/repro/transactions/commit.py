"""The troupe commit protocol (§5.3).

When a server troupe member is ready to commit (or wishes to abort) a
transaction, it calls ``ready_to_commit(boolean)`` — a replicated call
*back* to the client troupe (the roles of client and server are
temporarily reversed: a call-back protocol).  Each client troupe member
implements ``ready_to_commit`` by waiting for the votes of *all* server
troupe members before answering any of them:

- every member votes true  -> the client answers true, everyone commits;
- any member votes false   -> the client answers false, everyone aborts.

Theorem 5.1: two troupe members succeed in committing two transactions if
and only if they attempt to commit them in the same order — members that
disagree on the serialization order deadlock inside the protocol.  The
deadlock is broken by the coordinator's gather timeout, which answers
false; the aborted transactions retry under binary exponential back-off
(§5.3.1).  The protocol is *generic* (any local concurrency control that
serializes correctly works at each member) and *optimistic* (it assumes
conflicts are rare).
"""

from __future__ import annotations

import struct
from typing import Callable

from repro.core.collators import UnanimousCollator
from repro.core.runtime import (
    CallContext,
    ExplicitProcedure,
    ExportedModule,
    TroupeFailure,
    TroupeRuntime,
)
from repro.core.troupe import TroupeDescriptor
from repro.net.addresses import ModuleAddress
from repro.obs import events as obs_events
from repro.rpc.messages import RemoteError
from repro.transactions.lightweight import (
    Transaction,
    TransactionManager,
    TransactionalStore,
)
from repro.transactions.locks import TransactionAborted

#: By convention the coordinator module exports ready_to_commit as
#: procedure 0; the participant needs to know which module number the
#: client's coordinator occupies (clients usually export it first: 0).
READY_TO_COMMIT_PROC = 0

VOTE_COMMIT = b"\x01"
VOTE_ABORT = b"\x00"

TXN_ABORTED_ERROR = "TransactionAborted"

_TXN_HEADER = struct.Struct("!I")


def encode_vote(txn_serial: int, ready: bool) -> bytes:
    return _TXN_HEADER.pack(txn_serial) + (VOTE_COMMIT if ready else VOTE_ABORT)


def decode_vote(data: bytes):
    (serial,) = _TXN_HEADER.unpack_from(data, 0)
    return serial, data[_TXN_HEADER.size:] == VOTE_COMMIT


class CommitCoordinator:
    """The client half: exports ``ready_to_commit`` and plays the
    coordinator of two-phase commit for every transaction its thread runs.

    The gather of all server members' votes is exactly the runtime's
    many-to-one machinery: the handler sees every vote at once (explicit
    replication) and checks that the group was complete — an incomplete
    group means some server member never became ready within the gather
    timeout, i.e. the Theorem 5.1 deadlock, and the answer is *abort*.
    """

    def __init__(self, runtime: TroupeRuntime):
        self.runtime = runtime
        module = ExportedModule(
            "commit-coordinator",
            {READY_TO_COMMIT_PROC: ExplicitProcedure(self._ready_to_commit)})
        self.module_addr: ModuleAddress = runtime.export(module)
        runtime.start_server()
        self.decisions = {"commit": 0, "abort": 0}

    @property
    def module_number(self) -> int:
        return self.module_addr.module

    def _ready_to_commit(self, ctx: CallContext, args_by_peer) -> bytes:
        sim = self.runtime.sim
        process = self.runtime.process
        votes = []
        serials = []
        for peer, raw in args_by_peer.items():
            serial, ready = decode_vote(raw)
            votes.append(ready)
            serials.append(serial)
            if sim.bus.active:
                sim.bus.emit(obs_events.CommitVote(
                    t=sim.now, host=process.host, proc=process.name,
                    peer=peer, serial=serial, ready=ready))
        ok = ctx.group_complete and all(votes)
        self.decisions["commit" if ok else "abort"] += 1
        if sim.bus.active:
            sim.bus.emit(obs_events.CommitOutcome(
                t=sim.now, host=process.host, proc=process.name,
                decision="commit" if ok else "abort", votes=len(votes),
                group_complete=ctx.group_complete,
                serials=tuple(serials)))
        return VOTE_COMMIT if ok else VOTE_ABORT


class CommitParticipant:
    """The server half: wraps transactional procedure bodies.

    ``run_transaction`` executes a body inside a fresh top-level
    transaction, then drives the ready_to_commit call-back and commits or
    aborts according to the client's decision.  Used from inside an
    ordinary replicated procedure handler.
    """

    def __init__(self, runtime: TroupeRuntime, manager: TransactionManager,
                 store: TransactionalStore,
                 coordinator_module: int = 0,
                 deadlock_interval: float = 100.0):
        self.runtime = runtime
        self.manager = manager
        self.store = store
        self.coordinator_module = coordinator_module
        # §2.3.1: local deadlocks (e.g. two transactions upgrading shared
        # locks on the same object) are broken by aborting a victim; the
        # commit protocol then aborts the transaction at every member.
        self.deadlock_detector = None
        if deadlock_interval > 0:
            from repro.transactions.deadlock import DeadlockDetector
            self.deadlock_detector = DeadlockDetector(
                runtime.sim, manager.waits_for,
                lambda victim: manager.abort(victim, "deadlock victim"),
                interval=deadlock_interval,
                age_fn=lambda txn: txn.serial)
            # Event-driven: scans are scheduled only while a transaction
            # is actually blocked, so idle members generate no events.
            self.deadlock_detector.attach(manager.locks)

    def run_transaction(self, ctx: CallContext, body: Callable):
        """Generator: run ``body(txn)`` (a generator taking the
        transaction), then the commit protocol.  Returns the body's result
        on commit; raises RemoteError(TransactionAborted) otherwise, which
        the client should catch and retry with back-off.
        """
        txn = self.manager.begin()
        ready = True
        result = None
        try:
            result = yield from body(txn)
        except TransactionAborted:
            ready = False
        decision = yield from self._call_ready_to_commit(ctx, txn, ready)
        if decision and ready:
            self.manager.commit(txn, self.store)
            return result
        self.manager.abort(txn, "commit protocol voted abort")
        raise RemoteError(TXN_ABORTED_ERROR,
                          "transaction %s aborted" % txn.txn_id)

    def _call_ready_to_commit(self, ctx: CallContext, txn: Transaction,
                              ready: bool):
        """Generator: the replicated call back to the client troupe."""
        client_troupe = self._client_troupe(ctx)
        vote = encode_vote(txn.serial, ready)
        # The call-back's call number is derived from the original call's
        # number (assigned by the client, so identical at every server
        # member) rather than from this member's own counter: under
        # parallel execution members' counters diverge, and the votes of
        # one replicated call must group together at the coordinator.
        callback_number = ctx.call_number | 0x80000000
        try:
            answer = yield from self.runtime.call_troupe(
                client_troupe, self.coordinator_module, READY_TO_COMMIT_PROC,
                vote, collator=UnanimousCollator(), thread_id=ctx.thread_id,
                call_number=callback_number)
        except (TroupeFailure, RemoteError):
            # The client troupe vanished or misbehaved: abort.
            return False
        return answer == VOTE_COMMIT

    def _client_troupe(self, ctx: CallContext) -> TroupeDescriptor:
        """Reconstruct a descriptor for the client troupe from the call
        context (the §4.3.2 client-troupe-ID mapping, reused in reverse)."""
        members = None
        if ctx.client_troupe_id:
            members = self.runtime.resolver(ctx.client_troupe_id)
        if members is None:
            members = list(ctx.callers)
        return TroupeDescriptor(
            "client-troupe-%d" % ctx.client_troupe_id,
            ctx.client_troupe_id,
            tuple(ModuleAddress(addr, self.coordinator_module)
                  for addr in members))
