"""Lightweight nested transactions in volatile memory (§5.2).

Conventional nested transaction mechanisms (Reed, Moss) guarantee
atomicity, serializability, *and* permanence, using stable storage for
intention lists and commit records.  Permanence is not required in
programs constructed from troupes, because troupes mask partial failures;
"an implementation of transactions for replicated distributed programs can
dispense with the crash recovery facilities based on stable storage and
operate entirely in volatile memory.  The result is ... lightweight
transactions."

This module provides:

- :class:`Transaction` — a node in the nesting tree with status tracking;
- :class:`TransactionManager` — begin/commit/abort, ancestor queries,
  integration with the lock table and deadlock detector;
- :class:`TransactionalStore` — a keyed object store with two-phase
  locking, per-transaction write sets (tentative updates), and the Moss
  visibility rules: a transaction's tentative updates are visible to its
  descendants; a committed subtransaction's updates become visible to its
  parent; an abort undoes everything, and aborts never cascade.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Hashable, List, Optional, Set

from repro.sim.kernel import Simulator
from repro.transactions.locks import (
    EXCLUSIVE,
    LockTable,
    SHARED,
    TransactionAborted,
)


class TransactionStatus:
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One transaction in the nesting tree.

    Serial numbers come from the member-local manager, so deterministic
    troupe members assign identical serials to corresponding transactions
    (replica determinism: error messages and votes must not differ)."""

    def __init__(self, manager: "TransactionManager",
                 parent: Optional["Transaction"] = None):
        self.manager = manager
        self.parent = parent
        self.children: List[Transaction] = []
        self.serial = next(manager._serials)
        self.started_at = manager.sim.now
        self.status = TransactionStatus.ACTIVE
        #: tentative updates: key -> value (a deleted key maps to TOMBSTONE)
        self.writes: Dict[Hashable, Any] = {}
        if parent is not None:
            parent.children.append(self)

    @property
    def txn_id(self) -> str:
        return "T%d" % self.serial

    def __repr__(self) -> str:
        return "<Transaction %s (%s)>" % (self.txn_id, self.status)

    @property
    def is_top_level(self) -> bool:
        return self.parent is None

    def ancestors(self) -> Set["Transaction"]:
        result = set()
        node = self.parent
        while node is not None:
            result.add(node)
            node = node.parent
        return result

    def require_active(self) -> None:
        if self.status != TransactionStatus.ACTIVE:
            raise TransactionAborted(self.txn_id,
                                     "transaction is %s" % self.status)


class _Tombstone:
    def __repr__(self) -> str:
        return "<deleted>"


TOMBSTONE = _Tombstone()


class TransactionManager:
    """Creates and terminates transactions for one troupe member."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.locks = LockTable(sim, ancestors=lambda t: t.ancestors())
        self.active: Set[Transaction] = set()
        self.commits = 0
        self.aborts = 0
        self._serials = itertools.count(1)

    def begin(self, parent: Optional[Transaction] = None) -> Transaction:
        if parent is not None:
            parent.require_active()
        txn = Transaction(self, parent)
        self.active.add(txn)
        return txn

    def commit(self, txn: Transaction, store: "TransactionalStore") -> None:
        """Commit: merge tentative updates into the parent (or the global
        state for a top-level transaction) and handle locks accordingly."""
        txn.require_active()
        self._require_children_settled(txn)
        if txn.parent is None:
            store._apply_to_global(txn.writes)
            self.locks.release_all(txn)
        else:
            txn.parent.require_active()
            txn.parent.writes.update(txn.writes)
            self.locks.inherit_all(txn, txn.parent)
        txn.status = TransactionStatus.COMMITTED
        self.active.discard(txn)
        self.commits += 1

    def abort(self, txn: Transaction, reason: str = "") -> None:
        """Abort: discard tentative updates; recursively abort any active
        subtransactions; undo is implicit because updates were tentative."""
        if txn.status != TransactionStatus.ACTIVE:
            return
        for child in txn.children:
            self.abort(child, "parent aborted")
        txn.writes.clear()
        txn.status = TransactionStatus.ABORTED
        self.locks.release_all(txn)
        self.locks.abort_waiter(txn)
        self.active.discard(txn)
        self.aborts += 1

    def waits_for(self):
        return self.locks.waits_for()

    @staticmethod
    def _require_children_settled(txn: Transaction) -> None:
        for child in txn.children:
            if child.status == TransactionStatus.ACTIVE:
                raise RuntimeError(
                    "cannot commit %s: child %s still active" % (
                        txn.txn_id, child.txn_id))


class TransactionalStore:
    """A keyed store with two-phase locking and nested visibility.

    All reads and writes go through transactions; the global state changes
    only when a top-level transaction commits.  Entirely volatile: a
    machine crash loses it, and that is fine — replication is the
    alternative to stable storage (§3.5.1).
    """

    def __init__(self, manager: TransactionManager,
                 initial: Optional[Dict[Hashable, Any]] = None):
        self.manager = manager
        self._global: Dict[Hashable, Any] = dict(initial or {})

    # -- transactional operations (generators: they may block on locks) --

    def read(self, txn: Transaction, key: Hashable):
        """Generator: the value of ``key`` visible to ``txn`` (or None)."""
        txn.require_active()
        yield from self.manager.locks.acquire(txn, key, SHARED)
        return self._visible(txn, key)

    def write(self, txn: Transaction, key: Hashable, value: Any):
        """Generator: tentatively set ``key`` to ``value``."""
        txn.require_active()
        yield from self.manager.locks.acquire(txn, key, EXCLUSIVE)
        txn.writes[key] = value

    def delete(self, txn: Transaction, key: Hashable):
        """Generator: tentatively delete ``key``."""
        txn.require_active()
        yield from self.manager.locks.acquire(txn, key, EXCLUSIVE)
        txn.writes[key] = TOMBSTONE

    def keys(self, txn: Transaction):
        """Generator: the set of keys visible to ``txn``.

        Locks the whole keyspace conservatively by taking a shared lock on
        a distinguished whole-store key.
        """
        txn.require_active()
        yield from self.manager.locks.acquire(txn, _WHOLE_STORE, SHARED)
        visible = set(self._global)
        node: Optional[Transaction] = txn
        chain = []
        while node is not None:
            chain.append(node)
            node = node.parent
        for node in reversed(chain):
            for key, value in node.writes.items():
                if value is TOMBSTONE:
                    visible.discard(key)
                else:
                    visible.add(key)
        visible.discard(_WHOLE_STORE)
        return visible

    # -- non-transactional access (state transfer, assertions in tests) --

    def snapshot(self) -> Dict[Hashable, Any]:
        """The committed global state (used by get_state, §6.4.1)."""
        return dict(self._global)

    def load_snapshot(self, state: Dict[Hashable, Any]) -> None:
        """Install a state copied from an existing troupe member."""
        self._global = dict(state)

    def committed_get(self, key: Hashable, default: Any = None) -> Any:
        return self._global.get(key, default)

    # -- internals ----------------------------------------------------------

    def _visible(self, txn: Transaction, key: Hashable) -> Any:
        node: Optional[Transaction] = txn
        while node is not None:
            if key in node.writes:
                value = node.writes[key]
                return None if value is TOMBSTONE else value
            node = node.parent
        return self._global.get(key)

    def _apply_to_global(self, writes: Dict[Hashable, Any]) -> None:
        for key, value in writes.items():
            if value is TOMBSTONE:
                self._global.pop(key, None)
            else:
                self._global[key] = value


class _WholeStoreKey:
    def __repr__(self) -> str:
        return "<whole-store>"


_WHOLE_STORE = _WholeStoreKey()
