"""Deadlock detection: cycles in the waits-for relation (§2.3.1).

"A cycle in the waits-for relation is called a deadlock; the transactions
involved will wait forever. ... To break a deadlock once it has been
detected, any transaction in the cycle may be aborted and restarted."

The detector runs periodically (local detection suffices for a single
troupe member; cross-member deadlocks introduced by the troupe commit
protocol are broken by the commit timeout, §5.3).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set

from repro.obs import events as obs_events
from repro.sim.kernel import Simulator, Sleep


def find_cycle(graph: Dict[Any, Set[Any]]) -> Optional[List[Any]]:
    """A cycle in a directed graph, or None.

    Returns the cycle as a list of nodes (each waits for the next, and the
    last waits for the first).
    """
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    # Nodes that appear only as targets.
    for targets in graph.values():
        for node in targets:
            color.setdefault(node, WHITE)

    path: List[Any] = []

    def visit(node) -> Optional[List[Any]]:
        color[node] = GREY
        path.append(node)
        for succ in sorted(graph.get(node, set()), key=repr):
            if color[succ] == GREY:
                return path[path.index(succ):]
            if color[succ] == WHITE:
                cycle = visit(succ)
                if cycle is not None:
                    return cycle
        color[node] = BLACK
        path.pop()
        return None

    for node in sorted(color, key=repr):
        if color[node] == WHITE:
            cycle = visit(node)
            if cycle is not None:
                return cycle
    return None


class DeadlockDetector:
    """Periodically scans a waits-for graph and aborts a victim.

    ``graph_fn`` produces the current waits-for relation; ``abort_fn`` is
    called with the chosen victim.  The victim is the youngest transaction
    in the cycle (by the ``age_fn`` key, default: the transaction object's
    repr — deterministic, if arbitrary).
    """

    def __init__(self, sim: Simulator,
                 graph_fn: Callable[[], Dict[Any, Set[Any]]],
                 abort_fn: Callable[[Any], None],
                 interval: float = 50.0,
                 age_fn: Optional[Callable[[Any], Any]] = None):
        self.sim = sim
        self.graph_fn = graph_fn
        self.abort_fn = abort_fn
        self.interval = interval
        self.age_fn = age_fn or repr
        self.deadlocks_broken = 0
        self._proc = None
        self._armed = False
        self._stopped = False

    def start(self) -> None:
        """Periodic mode: scan every ``interval`` ms forever."""
        if self._proc is None:
            self._proc = self.sim.spawn(self._loop(), name="deadlock-detector",
                                        daemon=True)

    def attach(self, lock_table) -> None:
        """Event-driven mode: arm a one-shot scan whenever a transaction
        blocks, re-arming while waiters remain.  Unlike :meth:`start`,
        this schedules nothing while the system is idle, so simulations
        can drain their event queues."""
        lock_table.block_listeners.append(self._arm)

    def _arm(self) -> None:
        if self._armed or self._stopped:
            return
        self._armed = True
        self.sim.schedule(self.interval, self._scan)

    def _scan(self) -> None:
        self._armed = False
        if self._stopped:
            return
        self.check_once()
        if self.graph_fn():
            self._arm()  # waiters remain: keep scanning

    def stop(self) -> None:
        self._stopped = True
        if self._proc is not None:
            self._proc.kill()
            self._proc = None

    def check_once(self) -> Optional[Any]:
        """One detection pass; returns the aborted victim, if any."""
        cycle = find_cycle(self.graph_fn())
        if cycle is None:
            return None
        victim = max(cycle, key=self.age_fn)
        self.deadlocks_broken += 1
        if self.sim.bus.active:
            self.sim.bus.emit(obs_events.DeadlockDetected(
                t=self.sim.now, cycle=tuple(str(n) for n in cycle),
                victim=str(victim)))
        self.abort_fn(victim)
        return victim

    def _loop(self):
        while True:
            yield Sleep(self.interval)
            self.check_once()
