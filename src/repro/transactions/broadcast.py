"""The ordered broadcast protocol (§5.4, Figure 5.1).

A starvation-free alternative to the troupe commit protocol: concurrent
broadcasts are never interleaved — all recipients accept messages for
application-level processing in the same order.  Two phases, expressed as
replicated procedure calls:

1. ``get_proposed_time(message)`` — each server member timestamps the
   message with its (synchronized) clock and queues it as *proposed*;
2. ``accept_time(message, max_of_proposals)`` — each member re-queues the
   message as *accepted* at the maximum proposed time, then drains its
   queue head: a message is processed only when its status is accepted,
   its acceptance time has arrived, and no earlier *proposed* message
   remains ahead of it.

Ties are broken by the (deterministic) message ID, so all members drain
identically.  Combined with a deterministic local concurrency control
algorithm — the simplest being serial execution in acceptance order —
every member serializes transactions in the same order, with no chance
of protocol-induced deadlock.
"""

from __future__ import annotations

import struct
from typing import Callable, List, Optional, Tuple

from repro.core.collators import Collator
from repro.core.runtime import CallContext, ExportedModule, TroupeRuntime
from repro.core.troupe import TroupeDescriptor
from repro.rpc.messages import decode_return
from repro.rpc.threads import ThreadId
from repro.sim.kernel import Simulator

GET_PROPOSED_TIME_PROC = 0
ACCEPT_TIME_PROC = 1

PROPOSED = "proposed"
ACCEPTED = "accepted"

_TIME = struct.Struct("!d")
_ID_LEN = struct.Struct("!H")


def _encode_id_and_payload(msg_id: bytes, payload: bytes) -> bytes:
    return _ID_LEN.pack(len(msg_id)) + msg_id + payload


def _decode_id_and_payload(data: bytes) -> Tuple[bytes, bytes]:
    (length,) = _ID_LEN.unpack_from(data, 0)
    return data[2:2 + length], data[2 + length:]


class MaxTimeCollator(Collator):
    """Collates get_proposed_time responses: picks the maximum proposed
    time (the ``max`` loop in Figure 5.1's client side), returning the raw
    return message that carried it so the caller can decode uniformly."""

    needs_all = True

    def add(self, source, value):
        self.values.append((source, value))
        return (False, None)

    def finish(self):
        if not self.values:
            from repro.core.collators import CollationError
            raise CollationError("no proposals received")

        def proposed_time(raw: bytes) -> float:
            _header, body = decode_return(raw)
            return _TIME.unpack(body)[0]

        return max((v for _, v in self.values), key=proposed_time)


class OrderedBroadcastServer:
    """The server half of Figure 5.1, as an exportable module.

    ``deliver`` is invoked (in acceptance order, identically at every
    member) with each message's payload bytes; it may be a plain function
    or a generator.  Deliveries run in a dedicated thread so a slow
    handler never blocks the protocol procedures.
    """

    def __init__(self, runtime: TroupeRuntime,
                 deliver: Callable[[bytes], None],
                 clock_skew: float = 0.0):
        self.runtime = runtime
        self.sim: Simulator = runtime.sim
        self.deliver = deliver
        self.clock_skew = clock_skew
        #: queue entries: [time, msg_id, payload, status], kept sorted by
        #: (time, msg_id) — the paper's message_queue ordered by time.
        self.queue: List[list] = []
        self.delivered: List[bytes] = []   # msg_ids, in delivery order
        self.module = ExportedModule("ordered-broadcast", {
            GET_PROPOSED_TIME_PROC: self._get_proposed_time,
            ACCEPT_TIME_PROC: self._accept_time,
        })
        self.module_addr = runtime.export(self.module)
        runtime.start_server()

    def now(self) -> float:
        """The synchronized clock (§5.4 assumes synchronized clocks [50])."""
        return self.sim.now + self.clock_skew

    # -- protocol procedures ------------------------------------------------

    def _get_proposed_time(self, ctx: CallContext, args: bytes) -> bytes:
        msg_id, payload = _decode_id_and_payload(args)
        time = self.now()
        self._insert([time, msg_id, payload, PROPOSED])
        return _TIME.pack(time)

    def _accept_time(self, ctx: CallContext, args: bytes):
        msg_id, time_raw = _decode_id_and_payload(args)
        (accepted_time,) = _TIME.unpack(time_raw)
        entry = self._remove(msg_id)
        if entry is None:
            return b""  # duplicate accept; already processed
        entry[0] = accepted_time
        entry[3] = ACCEPTED
        self._insert(entry)
        yield from self._drain()
        return b""

    # -- queue management -------------------------------------------------

    def _insert(self, entry: list) -> None:
        self.queue.append(entry)
        self.queue.sort(key=lambda e: (e[0], e[1]))

    def _remove(self, msg_id: bytes) -> Optional[list]:
        for entry in self.queue:
            if entry[1] == msg_id and entry[3] == PROPOSED:
                self.queue.remove(entry)
                return entry
        return None

    def _drain(self):
        """Figure 5.1's acceptance loop: process head messages that are
        accepted, due, and not preceded by a pending proposal."""
        while self.queue:
            time, msg_id, payload, status = self.queue[0]
            if status == PROPOSED:
                break
            if time > self.now():
                # Not due yet: re-drain when its acceptance time arrives.
                self.sim.schedule(time - self.now(), self._drain_later)
                break
            self.queue.pop(0)
            self.delivered.append(msg_id)
            result = self.deliver(payload)
            if hasattr(result, "send"):
                yield from result

    def _drain_later(self) -> None:
        self.runtime.process.spawn(self._drain(), name="ob-drain",
                                   daemon=True)


def atomic_broadcast(runtime: TroupeRuntime, troupe: TroupeDescriptor,
                     module: int, msg_id: bytes, payload: bytes,
                     thread_id: Optional[ThreadId] = None):
    """Generator: the client half of Figure 5.1.

    Calls get_proposed_time at the whole troupe, takes the maximum of the
    proposed times, and calls accept_time with it.  ``msg_id`` must be
    unique and identical across client troupe members (derive it from the
    thread ID and a per-thread sequence number).
    """
    proposals_raw = yield from runtime.call_troupe(
        troupe, module, GET_PROPOSED_TIME_PROC,
        _encode_id_and_payload(msg_id, payload),
        collator=MaxTimeCollator(), thread_id=thread_id)
    yield from runtime.call_troupe(
        troupe, module, ACCEPT_TIME_PROC,
        _encode_id_and_payload(msg_id, proposals_raw),
        thread_id=thread_id)
