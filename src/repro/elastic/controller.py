"""The troupe autoscaler: a controller process over bus metrics.

The controller is an ordinary simulated process on a (reliable) machine.
It observes two signals straight off the event bus:

- **queue depth** — replicated calls currently in flight against the
  managed troupe (``rpc.call_start`` minus ``rpc.call_end``);
- **call latency** — virtual-time duration of recently completed calls,
  matched by the propagated ``(thread_id, call_number)`` trace context
  (the same join key the critical-path analyzer uses).

Every ``interval`` ms it runs one reconciliation step, in a fixed order
so runs are deterministic:

1. *sweep* — members whose machine is down are removed from the binding
   agent (advancing the troupe ID past the dead incarnation, §6.2);
2. *scale* — if depth/latency are above the high-water marks and the
   pool has an idle, live machine, one member joins (§6.4.1 state
   transfer + ``add_troupe_member``); if both are below the low-water
   marks and the troupe is above ``min_members``, the youngest member is
   removed;
3. *heal* — below ``min_members`` (after crashes), any live pool machine
   is drafted regardless of load.

All membership operations go through the §6 protocols — nothing mutates
registries directly — so every step the controller takes is visible to
the fuzzer's event-aligned faults and to the invariant monitors.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from repro.binding.client import BindingClient
from repro.binding.reconfig import ReplaceableModule, join_troupe
from repro.core.runtime import TroupeRuntime
from repro.core.troupe import TroupeDescriptor
from repro.host.machine import Machine
from repro.sim.kernel import Sleep


@dataclasses.dataclass(frozen=True)
class AutoscalerConfig:
    """Control-loop knobs (virtual milliseconds throughout)."""

    interval: float = 150.0       # reconciliation period
    min_members: int = 1
    max_members: int = 4
    high_depth: float = 2.0       # grow above this many in-flight calls
    low_depth: float = 1.0        # shrink below (with low latency)
    high_latency: float = 60.0    # grow above this mean completed latency
    low_latency: float = 25.0
    latency_window: int = 8       # completed calls the latency mean spans


class TroupeAutoscaler:
    """Grows and shrinks one troupe at runtime, and keeps it alive.

    ``pool`` is the set of machines allowed to host members; the
    controller itself (and its Ringmaster) should live elsewhere, so the
    observer survives the faults aimed at the system under test.
    ``module_factory()`` must return a fresh
    :class:`~repro.binding.reconfig.ReplaceableModule` per member —
    replicas may not literally share state.
    """

    def __init__(self, world, runtime: TroupeRuntime,
                 binding: BindingClient, name: str,
                 module_factory: Callable[[], ReplaceableModule],
                 pool: List[Machine],
                 config: Optional[AutoscalerConfig] = None,
                 process_name: str = "server"):
        self.world = world
        self.runtime = runtime          # the controller's own runtime
        self.binding = binding          # ... and its binding client
        self.name = name
        self.module_factory = module_factory
        self.pool = list(pool)
        self.config = config or AutoscalerConfig()
        self.process_name = process_name
        #: machine name -> (member_addr, crash_count at join), join order.
        #: A member is *broken* once its machine's crash count moves —
        #: fail-stop kills its process even if the machine restarts.
        self.members: Dict[str, Tuple] = {}
        #: deterministic action log: (virtual time, description).
        self.actions: List[Tuple[float, str]] = []
        self.joins = 0
        self.removes = 0
        self.failed_ops = 0
        #: troupe wiped out (every member fail-stopped) and re-founded
        #: from a fresh module — state lost, exactly as §3.5.1 promises.
        self.cold_restarts = 0
        #: dead member addresses still registered with the agent (a
        #: cold-restart's removals failed); retried every sweep.
        self._orphans: List = []
        self._max_seen = 0
        # -- bus-metric state --
        self._inflight: Dict[Tuple[str, int], float] = {}
        self._latencies: List[float] = []
        self._sub = None
        self._proc = None
        self._stopped = False

    # -- bus metrics -----------------------------------------------------

    def _on_call_event(self, event) -> None:
        if getattr(event, "troupe", "") != self.name:
            return
        key = (event.thread_id, event.call_number)
        if event.kind == "rpc.call_start":
            self._inflight[key] = event.t
        else:
            started = self._inflight.pop(key, None)
            if started is not None:
                self._latencies.append(event.t - started)
                window = self.config.latency_window
                if len(self._latencies) > window:
                    del self._latencies[:-window]

    @property
    def depth(self) -> int:
        """Replicated calls against the troupe currently in flight."""
        return len(self._inflight)

    def mean_latency(self) -> float:
        """Mean completed-call latency over the recent window (ms)."""
        if not self._latencies:
            return 0.0
        return sum(self._latencies) / len(self._latencies)

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        sim = self.world.sim
        if self._sub is None:
            self._sub = sim.bus.subscribe(
                self._on_call_event, kinds=("rpc.call_start", "rpc.call_end"))
        if self._proc is None:
            self._stopped = False
            self._proc = sim.spawn(self._control_loop(),
                                   name="autoscaler:%s" % self.name,
                                   daemon=True)

    def stop(self) -> None:
        self._stopped = True
        if self._sub is not None:
            self.world.sim.bus.unsubscribe(self._sub)
            self._sub = None
        if self._proc is not None:
            self._proc.kill()
            self._proc = None

    def _log(self, desc: str) -> None:
        self.actions.append((self.world.sim.now, desc))

    # -- membership operations ------------------------------------------

    def _make_member(self, machine: Machine):
        """A fresh server runtime + module on ``machine`` (the
        crashed-and-repaired case always needs new processes)."""
        process = machine.spawn_process(self.process_name)
        holder: Dict[str, BindingClient] = {}

        def resolver(tid):
            client = holder.get("binding")
            return client.make_resolver()(tid) if client else None

        runtime = TroupeRuntime(process, resolver=resolver)
        binding = BindingClient(runtime, self.binding.ringmaster)
        holder["binding"] = binding
        module = self.module_factory()
        member_addr = runtime.export(module)
        runtime.start_server()
        self.world.runtimes.append(runtime)
        return runtime, binding, module, member_addr

    def bootstrap(self, machine: Machine):
        """Generator: the founding member — a plain ``export_module``
        (there is nobody to fetch state from yet)."""
        runtime, binding, module, member_addr = self._make_member(machine)
        tid = yield from binding.export_module(self.name, member_addr)
        self.members[machine.name] = (member_addr, machine.crash_count)
        self._max_seen = max(self._max_seen, len(self.members))
        self.joins += 1
        self._log("bootstrap %s" % machine.name)
        return tid

    def join(self, machine: Machine):
        """Generator: one §6.4.1 join — state transfer, then register."""
        runtime, binding, module, member_addr = self._make_member(machine)
        tid = yield from join_troupe(runtime, module, member_addr,
                                     self.name, binding)
        self.members[machine.name] = (member_addr, machine.crash_count)
        self._max_seen = max(self._max_seen, len(self.members))
        self.joins += 1
        self._log("join %s" % machine.name)
        return tid

    def remove(self, machine_name: str):
        """Generator: drop the member on ``machine_name`` via the
        binding agent."""
        member_addr, _epoch = self.members[machine_name]
        tid = yield from self.binding.remove_member(self.name, member_addr)
        del self.members[machine_name]
        self.removes += 1
        self._log("remove %s" % machine_name)
        return tid

    # -- the control loop ------------------------------------------------

    def _broken(self, machine_name: str) -> bool:
        """Fail-stop: a member died if its machine is down *or* crashed
        at any point since the join (the restart comes back empty)."""
        machine = self.world.machine(machine_name)
        return (not machine.up
                or machine.crash_count != self.members[machine_name][1])

    def _idle_machines(self) -> List[Machine]:
        return [m for m in self.pool
                if m.up and m.name not in self.members]

    def _guarded(self, op, desc: str):
        try:
            yield from op
        except Exception as exc:
            self.failed_ops += 1
            self._log("%s failed: %s" % (desc, type(exc).__name__))

    def _reconcile(self):
        cfg = self.config
        broken = [n for n in self.members if self._broken(n)]
        if broken and len(broken) == len(self.members):
            # Every member fail-stopped: the replicated state is gone
            # (§3.5.1).  Re-found the troupe on a live machine — a plain
            # add (there is no surviving state to transfer), then retire
            # the dead incarnations, which is legal now that the fresh
            # member keeps the troupe non-empty.
            idle = self._idle_machines()
            if not idle:
                return   # wait for a repair
            self._orphans.extend(
                self.members.pop(n)[0] for n in broken)
            machine = idle[0]
            self.cold_restarts += 1
            self._log("cold-restart on %s" % machine.name)

            def refound():
                runtime, binding, module, member_addr = (
                    self._make_member(machine))
                yield from binding.export_module(self.name, member_addr)
                self.members[machine.name] = (member_addr,
                                              machine.crash_count)
                self.joins += 1
                self._log("re-found %s" % machine.name)

            yield from self._guarded(refound(), "cold-restart")
            if not self.members:
                return   # the re-founding export itself failed; retry later
        # 1. sweep broken members (never the last one: LastMember),
        #    plus any dead addresses a cold-restart left registered.
        for name in [n for n in self.members if self._broken(n)]:
            if len(self.members) <= 1:
                break
            yield from self._guarded(self.remove(name), "remove %s" % name)
        for addr in list(self._orphans):
            def drop(addr=addr):
                yield from self.binding.remove_member(self.name, addr)
                self._orphans.remove(addr)
                self.removes += 1
                self._log("remove dead %s" % (addr.process.host,))
            yield from self._guarded(drop(), "remove orphan")
        # 2. scale on load.
        depth = self.depth
        latency = self.mean_latency()
        live = len(self.members)
        grow = (live < cfg.max_members
                and (depth > cfg.high_depth or latency > cfg.high_latency))
        heal = live < cfg.min_members
        if grow or heal:
            idle = self._idle_machines()
            if idle:
                machine = idle[0]
                op = self.join(machine) if self.members else \
                    self.bootstrap(machine)
                yield from self._guarded(op, "join %s" % machine.name)
        elif (live > cfg.min_members and depth < cfg.low_depth
                and latency < cfg.low_latency):
            # shrink: retire the youngest live member.
            for name in reversed(list(self.members)):
                if not self._broken(name):
                    yield from self._guarded(self.remove(name),
                                             "remove %s" % name)
                    break

    def _control_loop(self):
        while not self._stopped:
            yield Sleep(self.config.interval)
            yield from self._reconcile()

    # -- reporting -------------------------------------------------------

    def descriptor(self) -> Optional[TroupeDescriptor]:
        return self.binding.cache.get(self.name)

    def summary(self) -> Dict[str, object]:
        """Deterministic summary for reports and digests."""
        return {
            "joins": self.joins,
            "removes": self.removes,
            "failed_ops": self.failed_ops,
            "cold_restarts": self.cold_restarts,
            "max_members": self._max_seen,
            "final_members": sorted(self.members),
            "actions": len(self.actions),
        }
