"""Elastic troupes: runtime growth and shrinkage under load (§6.4.1).

The paper's reconfiguration machinery (``add_troupe_member`` /
``get_state``) replaces *crashed* members; this package closes the loop
and treats membership as a control variable.  A
:class:`~repro.elastic.controller.TroupeAutoscaler` watches the bus —
in-flight replicated-call depth and completed-call latency — and grows or
shrinks a troupe at runtime by driving the §6.4.1 join protocol (state
transfer via the replicated ``get_state`` call, then
``add_troupe_member``) and ``remove_troupe_member`` against the
Ringmaster.  It also plays the Janitor's role continuously: crashed
members are removed (so the troupe ID advances past the dead
incarnation), repaired machines re-join through a fresh state transfer.

:func:`~repro.elastic.scenario.run_elastic` packages the whole story as
the §6.4.2 availability experiment: an exponential crash/repair process
(:class:`~repro.host.failures.FailureModel`) churns the member pool while
the autoscaler keeps the troupe populated, and the measured availability
is compared against the M/M/n/n prediction of Equation 6.1
(:mod:`repro.analysis.availability`).  The ``elastic`` /
``elastic-adversarial`` entries in :mod:`repro.explore.scenarios` run the
same machinery under the fault-schedule fuzzer, whose
reconfiguration-aware actions (``crash-during-transfer``,
``partition-during-join``) land faults inside the membership-change
windows this package keeps opening.
"""

from repro.elastic.controller import AutoscalerConfig, TroupeAutoscaler
from repro.elastic.scenario import ELASTIC_FORMAT, run_elastic

__all__ = [
    "AutoscalerConfig",
    "TroupeAutoscaler",
    "ELASTIC_FORMAT",
    "run_elastic",
]
