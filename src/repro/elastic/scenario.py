"""The §6.4.2 availability experiment, run live under the autoscaler.

:func:`run_elastic` assembles one controller machine (Ringmaster +
autoscaler + clients — the reliable observer) and an ``n``-machine member
pool, then lets two processes fight over the pool for ``duration``
virtual milliseconds:

- a stock exponential :class:`~repro.host.failures.FailureModel` crashes
  and repairs exactly the ``n`` pool machines (mean lifetime ``mttf``,
  mean repair ``mttr``) — the literal birth-death process of Figure 6.3;
- the :class:`~repro.elastic.controller.TroupeAutoscaler` keeps a
  replicated counter troupe alive on whatever machines are up, removing
  fail-stopped members and re-joining repaired machines through §6.4.1
  state transfer, while also scaling on the client load (the workload
  alternates bursts and quiet phases so both directions trigger).

Because the failure process runs over exactly the ``n`` pool machines,
``FailureModel.measured_availability()`` is a direct measurement of
``1 - p_n`` and lands next to Equation 6.1's prediction
(:func:`repro.analysis.availability.availability`) in the report.  A
second measured number — the fraction of time the *troupe* had at least
one live member — shows the reconfiguration lag the machine-level model
cannot see.

Everything in the returned payload is virtual-time-deterministic: the
same seed produces byte-identical JSON, which the CI ``elastic-smoke``
job checks with ``cmp``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.analysis.availability import availability
from repro.binding import BindingClient, ReplaceableModule, start_ringmaster
from repro.elastic.controller import AutoscalerConfig, TroupeAutoscaler
from repro.harness import World
from repro.host.failures import FailureModel
from repro.obs.critpath import CritPathAnalyzer
from repro.sim.kernel import Sleep
from repro.sim.rng import RandomStream

#: the deterministic report format tag.
ELASTIC_FORMAT = "repro.elastic/1"

#: troupe name used by the experiment and the explore scenarios.
TROUPE_NAME = "elastic-svc"

READ_PROC, INCR_PROC = 0, 1


def counter_module() -> ReplaceableModule:
    """A fresh replicated counter with §6.4.1 state transfer."""
    state: Dict[str, int] = {}

    def increment(ctx, args):
        state["count"] = state.get("count", 0) + 1
        return b"%d" % state["count"]

    def get(ctx, args):
        return b"%d" % state.get("count", 0)

    return ReplaceableModule(
        "counter", {READ_PROC: get, INCR_PROC: increment},
        externalize=lambda: b"%d" % state.get("count", 0),
        internalize=lambda raw: state.__setitem__("count", int(raw)))


def _percentile(samples: List[float], pct: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(pct / 100.0 * (len(ordered) - 1))))
    return ordered[index]


def build_world(seed: int, pool: int):
    """Controller machine + ``pool`` member machines, Ringmaster and
    autoscaler wired on the controller.  Returns
    ``(world, autoscaler, client_binding)``."""
    names = ["ctl"] + ["pool%d" % i for i in range(pool)]
    world = World(machines=len(names), seed=seed, machine_names=names)
    ctl = world.machine("ctl")
    ringmaster, _members = start_ringmaster([ctl])
    controller_rt = world.make_client(machine_name="ctl")
    controller_binding = BindingClient(controller_rt, ringmaster)
    autoscaler = TroupeAutoscaler(
        world, controller_rt, controller_binding, TROUPE_NAME,
        counter_module, [world.machine(n) for n in names[1:]],
        config=AutoscalerConfig(min_members=1, max_members=max(2, pool - 1)))
    client_rt = world.make_client(machine_name="ctl")
    client_binding = BindingClient(client_rt, ringmaster)
    return world, autoscaler, client_binding


def run_elastic(seed: int = 0, pool: int = 4, duration: float = 30000.0,
                mttf: float = 8000.0, mttr: float = 1200.0,
                burst_every: float = 4000.0, burst_calls: int = 6,
                config: Optional[AutoscalerConfig] = None) -> Dict:
    """Run the experiment; returns the deterministic report payload."""
    if pool < 2:
        raise ValueError("the member pool needs at least 2 machines")
    world, autoscaler, client_binding = build_world(seed, pool)
    if config is not None:
        autoscaler.config = config
    sim = world.sim
    pool_machines = autoscaler.pool
    model = FailureModel(sim, pool_machines, failure_rate=1.0 / mttf,
                         repair_rate=1.0 / mttr, seed=seed)
    rng = RandomStream(seed, "elastic-workload")
    ok: List[int] = [0]
    failed: List[int] = [0]
    latencies: List[float] = []
    troupe_up_ms: List[float] = [0.0]

    def one_call(tag: bytes):
        started = sim.now
        try:
            reply = yield from client_binding.call(
                TROUPE_NAME, INCR_PROC, tag)
        except Exception:
            failed[0] += 1
        else:
            ok[0] += 1
            latencies.append(sim.now - started)
            return reply

    def troupe_uptime_poller():
        # samples whether >=1 registered member is live; 25 ms resolution.
        while True:
            yield Sleep(25.0)
            live = any(not autoscaler._broken(name)
                       for name in autoscaler.members)
            if live:
                troupe_up_ms[0] += 25.0

    def body():
        # found the troupe on the first two pool machines before the
        # failure process starts gunning for them.
        yield from autoscaler.bootstrap(pool_machines[0])
        yield from autoscaler.join(pool_machines[1])
        autoscaler.start()
        model.start()
        sim.spawn(troupe_uptime_poller(), name="troupe-uptime", daemon=True)
        t_end = sim.now + duration
        cycle = 0
        while sim.now < t_end:
            # burst phase: concurrent calls pile up queue depth (grow)...
            for i in range(burst_calls):
                sim.spawn(one_call(b"b%d-%d" % (cycle, i)),
                          name="burst-%d-%d" % (cycle, i))
                yield Sleep(round(rng.uniform(1.0, 15.0), 3))
            # ...then a quiet phase: sparse sequential calls (shrink).
            quiet_until = min(t_end, sim.now + burst_every)
            while sim.now < quiet_until:
                yield from one_call(b"q%d" % cycle)
                yield Sleep(round(rng.uniform(150.0, 400.0), 3))
            cycle += 1
        model.stop()
        autoscaler.stop()
        yield Sleep(300.0)   # drain retransmits and in-flight calls

    with CritPathAnalyzer(sim) as critpath:
        world.run(body(), name="elastic-experiment")
        cp_report = critpath.report()

    elapsed = sim.now
    measured = model.measured_availability()
    predicted = availability(pool, 1.0 / mttf, 1.0 / mttr)
    troupe_avail = min(1.0, troupe_up_ms[0] / duration) if duration else 1.0
    return {
        "format": ELASTIC_FORMAT,
        "seed": seed,
        "pool": pool,
        "mttf_ms": mttf,
        "mttr_ms": mttr,
        "duration_ms": duration,
        "virtual_end_ms": round(elapsed, 3),
        "calls": {
            "ok": ok[0],
            "failed": failed[0],
            "p50_ms": round(_percentile(latencies, 50.0), 3),
            "p99_ms": round(_percentile(latencies, 99.0), 3),
        },
        "availability": {
            "predicted_mmnn": round(predicted, 6),
            "measured_machine": round(measured, 6),
            "machine_delta": round(measured - predicted, 6),
            "measured_troupe": round(troupe_avail, 6),
        },
        "failures": {
            "machine_failures": model.total_failures,
            "machine_repairs": model.total_repairs,
        },
        "membership": autoscaler.summary(),
        "critpath": {
            "calls": cp_report["calls"],
            "degraded_calls": cp_report["degraded_calls"],
            "attributed_pct": cp_report["attributed_pct"],
            "dominant": cp_report["dominant"],
        },
    }


def payload_json(payload: Dict) -> str:
    """Canonical serialization (what the smoke job ``cmp``\\ s)."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
