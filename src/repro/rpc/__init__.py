"""The RPC runtime layer: call/return message contents and thread identity.

The paired message layer treats message contents as uninterpreted bytes
(§4.2); this package defines what Circus puts inside them (§4.3):

- a call message header carrying the caller's *thread ID* (for the §3.4.1
  propagation algorithm), the *client troupe ID* and *destination troupe
  ID* (incarnation numbers, §6.2), and the module and procedure numbers;
- a return message header distinguishing normal from error results;
- the export table a server process uses to dispatch incoming calls.
"""

from repro.rpc.messages import (
    CallHeader,
    RemoteError,
    ReturnHeader,
    decode_call,
    decode_return,
    encode_call,
    encode_error,
    encode_return,
    raise_if_error,
)
from repro.rpc.threads import ThreadId, ThreadContext

__all__ = [
    "CallHeader",
    "RemoteError",
    "ReturnHeader",
    "ThreadContext",
    "ThreadId",
    "decode_call",
    "decode_return",
    "encode_call",
    "encode_error",
    "encode_return",
    "raise_if_error",
]
