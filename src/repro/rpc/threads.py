"""Distributed threads of control and the thread ID propagation algorithm.

§3.4.1 of the paper: the lifetime of a *base process* is that of the whole
distributed thread, so its local process ID plus a machine ID makes a
unique thread ID.  Every call message bears the caller's thread ID, and a
server process *adopts* that ID while performing the requested procedure,
so the ID propagates correctly through nested remote calls.

In the replicated case (§4.3.2), all members of a client troupe act on
behalf of the same logical thread and therefore attach the *same* thread
ID to their call messages — that is how a server recognizes the call
messages of one replicated call.  A troupe that originates a thread itself
must thus be given its root thread ID explicitly (the configuration
manager does this); a troupe member invents its own ID only when it is
genuinely unreplicated.
"""

from __future__ import annotations

import struct
from typing import List, NamedTuple, Optional


class ThreadId(NamedTuple):
    """A globally unique identifier for one distributed thread of control.

    ``origin`` identifies the base process's machine (or a logical name
    assigned by the configuration manager); ``pid`` is the base process's
    local process ID (or a logical serial number).
    """

    origin: str
    pid: int

    def __str__(self) -> str:
        return "%s.%d" % (self.origin, self.pid)

    def encode(self) -> bytes:
        raw = self.origin.encode("utf-8")
        return struct.pack("!HI", len(raw), self.pid & 0xFFFFFFFF) + raw

    @classmethod
    def decode(cls, data: bytes, offset: int = 0):
        """Returns (thread_id, next_offset)."""
        length, pid = struct.unpack_from("!HI", data, offset)
        offset += 6
        origin = data[offset:offset + length].decode("utf-8")
        return cls(origin, pid), offset + length


class ThreadContext:
    """The per-OS-process bookkeeping for thread IDs and call sequencing.

    A server process pushes the caller's thread ID while executing a call
    (adoption) and pops it afterwards; the ID on top of the stack is
    attached to any nested outgoing calls.  The call sequence counter is
    monotonic per process, so call numbers are unique per process pair —
    and because deterministic troupe members issue the same sequence of
    calls, corresponding members use the same call numbers (§4.3.2).
    """

    def __init__(self, default: Optional[ThreadId] = None):
        self._stack: List[ThreadId] = []
        self.default = default
        self._next_call_number = 1

    @property
    def current(self) -> ThreadId:
        if self._stack:
            return self._stack[-1]
        if self.default is None:
            raise RuntimeError("no thread ID in context and no default set")
        return self.default

    def adopt(self, thread_id: ThreadId) -> None:
        """Assume the caller's thread ID for the duration of a procedure."""
        self._stack.append(thread_id)

    def release(self, thread_id: ThreadId) -> None:
        if not self._stack or self._stack[-1] != thread_id:
            raise RuntimeError(
                "thread ID release out of order: %s" % (thread_id,))
        self._stack.pop()

    def next_call_number(self) -> int:
        number = self._next_call_number
        self._next_call_number += 1
        return number

    def depth(self) -> int:
        return len(self._stack)
