"""Call and return message contents (§4.3).

A call message consists of a header containing the thread ID of the
caller, the client and destination troupe IDs (used as incarnation
numbers, §6.2), the module number and procedure number, followed by the
externalized parameters.  A return message consists of a 16-bit header
distinguishing normal from error results, followed by the externalized
results (or the externalized error).  The parameter bytes themselves are
produced by the stub layer; this module does not interpret them.
"""

from __future__ import annotations

import struct
from typing import NamedTuple, Tuple

from repro.rpc.threads import ThreadId

_CALL_FIXED = struct.Struct("!QQHH")   # client troupe id, dest troupe id, module, proc
_RETURN_FIXED = struct.Struct("!H")    # status

RETURN_OK = 0
RETURN_ERROR = 1


class RemoteError(Exception):
    """An exception raised by the remote procedure, propagated to the caller."""

    def __init__(self, kind: str, detail: str = ""):
        super().__init__("%s: %s" % (kind, detail) if detail else kind)
        self.kind = kind
        self.detail = detail


class CallHeader(NamedTuple):
    thread_id: ThreadId
    client_troupe_id: int
    dest_troupe_id: int
    module: int
    procedure: int


class ReturnHeader(NamedTuple):
    status: int

    @property
    def is_error(self) -> bool:
        return self.status == RETURN_ERROR


def encode_call(header: CallHeader, args: bytes) -> bytes:
    return (header.thread_id.encode()
            + _CALL_FIXED.pack(header.client_troupe_id,
                               header.dest_troupe_id,
                               header.module, header.procedure)
            + args)


def decode_call(data: bytes) -> Tuple[CallHeader, bytes]:
    thread_id, offset = ThreadId.decode(data)
    client_tid, dest_tid, module, procedure = _CALL_FIXED.unpack_from(
        data, offset)
    offset += _CALL_FIXED.size
    header = CallHeader(thread_id, client_tid, dest_tid, module, procedure)
    return header, data[offset:]


def encode_return(results: bytes) -> bytes:
    return _RETURN_FIXED.pack(RETURN_OK) + results


def encode_error(kind: str, detail: str = "") -> bytes:
    kind_raw = kind.encode("utf-8")
    detail_raw = detail.encode("utf-8")
    return (_RETURN_FIXED.pack(RETURN_ERROR)
            + struct.pack("!H", len(kind_raw)) + kind_raw
            + detail_raw)


def decode_return(data: bytes) -> Tuple[ReturnHeader, bytes]:
    """Returns (header, results).  Raises nothing; the caller decides
    whether to raise RemoteError via :func:`raise_if_error`."""
    (status,) = _RETURN_FIXED.unpack_from(data, 0)
    return ReturnHeader(status), data[_RETURN_FIXED.size:]


def raise_if_error(header: ReturnHeader, body: bytes) -> bytes:
    """The normal results, or RemoteError for an error return."""
    if not header.is_error:
        return body
    (length,) = struct.unpack_from("!H", body, 0)
    kind = body[2:2 + length].decode("utf-8")
    detail = body[2 + length:].decode("utf-8")
    raise RemoteError(kind, detail)
