"""Harmonic numbers and the §4.4.2 performance analysis.

Theorem 4.3 of the paper: if X_1, ..., X_n are independent exponentials
with mean 1/mu, then E[max(X_i)] = H_n / mu.  Applied to a multicast-based
replicated call with exponentially distributed round-trip times of mean r,
the expected time for the call is

    E[T] = H_n * r = r log n + O(r),

so the expected time per call grows only *logarithmically* with troupe
size — versus linearly when multicast is simulated by repeated
point-to-point sends (the Circus measurement of Figure 4.8).
"""

from __future__ import annotations

import math


def harmonic(n: int) -> float:
    """The n-th harmonic number H_n = 1 + 1/2 + ... + 1/n (Definition 4.1)."""
    if n < 0:
        raise ValueError("harmonic number of negative n: %r" % n)
    if n < 100:
        return sum(1.0 / k for k in range(1, n + 1))
    # Asymptotic expansion: accurate to ~1e-10 for n >= 100.
    gamma = 0.57721566490153286
    return (math.log(n) + gamma + 1.0 / (2 * n)
            - 1.0 / (12 * n * n) + 1.0 / (120 * n ** 4))


def expected_max_exponential(n: int, mean: float) -> float:
    """E[max of n iid exponentials with the given mean] (Theorem 4.3)."""
    if n < 1:
        raise ValueError("need at least one variable: %r" % n)
    if mean <= 0:
        raise ValueError("mean must be positive: %r" % mean)
    return harmonic(n) * mean


def expected_replicated_call_time(n: int, round_trip_mean: float) -> float:
    """Expected time of a multicast replicated call to an n-member troupe
    with exponentially distributed round trips (the §4.4.2 estimate)."""
    return expected_max_exponential(n, round_trip_mean)
