"""Analytic models from the paper.

- :mod:`repro.analysis.harmonic` — harmonic numbers and the expected
  maximum of exponentials (§4.4.2): E[T] = H_n * r for a multicast-based
  replicated call.
- :mod:`repro.analysis.availability` — the birth-death / M/M/n/n troupe
  availability model (§6.4.2): Equation 6.1 and 6.2.
- :mod:`repro.analysis.commit` — the troupe commit protocol deadlock
  probability (§5.3.1): Equation 5.1.
"""

from repro.analysis.harmonic import (
    expected_max_exponential,
    expected_replicated_call_time,
    harmonic,
)
from repro.analysis.availability import (
    availability,
    failed_member_distribution,
    required_repair_time,
)
from repro.analysis.commit import deadlock_probability

__all__ = [
    "availability",
    "deadlock_probability",
    "expected_max_exponential",
    "expected_replicated_call_time",
    "failed_member_distribution",
    "harmonic",
    "required_repair_time",
]
