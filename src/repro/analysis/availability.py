"""Troupe availability: the birth-death / M/M/n/n model of §6.4.2.

A troupe of n members, each with exponential lifetime (mean 1/lambda) and
exponential repair time (mean 1/mu), failing and being repaired
independently, is a birth-death process isomorphic to the M/M/n/n queue
(Figure 6.3).  Its equilibrium distribution gives:

    p_k = C(n,k) (lambda/mu)^k / (1 + lambda/mu)^n      (k failed members)
    A   = 1 - p_n = 1 - (lambda / (lambda + mu))^n       (Equation 6.1)

and, solving for the replacement time needed to achieve availability A:

    1/mu = (1/lambda) * (1-A)^(1/n) / (1 - (1-A)^(1/n))  (Equation 6.2)

The paper's worked example: a 3-member troupe with one-hour lifetimes
needs replacement within 6 minutes 40 seconds for 99.9% availability.
"""

from __future__ import annotations

import math
from typing import List


def _check_rates(failure_rate: float, repair_rate: float) -> None:
    if failure_rate <= 0 or repair_rate <= 0:
        raise ValueError("rates must be positive")


def failed_member_distribution(n: int, failure_rate: float,
                               repair_rate: float) -> List[float]:
    """The equilibrium probabilities p_0..p_n of k failed members
    (Kleinrock's M/M/n/n result quoted in §6.4.2)."""
    if n < 1:
        raise ValueError("troupe size must be at least 1")
    _check_rates(failure_rate, repair_rate)
    rho = failure_rate / repair_rate
    weights = [math.comb(n, k) * rho ** k for k in range(n + 1)]
    total = (1.0 + rho) ** n
    return [w / total for w in weights]


def availability(n: int, failure_rate: float, repair_rate: float) -> float:
    """Equation 6.1: A = 1 - (lambda / (lambda + mu))^n."""
    if n < 1:
        raise ValueError("troupe size must be at least 1")
    _check_rates(failure_rate, repair_rate)
    return 1.0 - (failure_rate / (failure_rate + repair_rate)) ** n


def required_repair_time(n: int, lifetime: float,
                         target_availability: float) -> float:
    """Equation 6.2: the longest average replacement time 1/mu that still
    achieves the target availability, given member lifetime 1/lambda."""
    if n < 1:
        raise ValueError("troupe size must be at least 1")
    if lifetime <= 0:
        raise ValueError("lifetime must be positive")
    if not 0.0 < target_availability < 1.0:
        raise ValueError("availability must be strictly between 0 and 1")
    x = (1.0 - target_availability) ** (1.0 / n)
    return lifetime * x / (1.0 - x)
