"""Deadlock probability of the troupe commit protocol (§5.3.1).

With k conflicting transactions serialized independently and uniformly at
random by each of n server troupe members, the protocol avoids deadlock
only when all n members choose the same order:

    P[deadlock] = 1 - (1/k!)^(n-1)        (Equation 5.1)

which rapidly approaches certainty as k grows — the starvation argument
motivating the ordered-broadcast alternative of §5.4.
"""

from __future__ import annotations

import math


def deadlock_probability(k: int, n: int) -> float:
    """Equation 5.1 for k conflicting transactions and n troupe members."""
    if k < 1:
        raise ValueError("at least one transaction required")
    if n < 1:
        raise ValueError("at least one troupe member required")
    if n == 1 or k == 1:
        return 0.0
    return 1.0 - (1.0 / math.factorial(k)) ** (n - 1)
