"""The Circus paired message protocol (§4.2 of the paper).

A paired message protocol is "a distillation of the communication
requirements of conventional remote procedure call protocols": reliably
delivered, variable-length, paired messages (call and return), with call
numbers that uniquely identify each pair among all those exchanged by a
given pair of processes.

The layer is connectionless — a client merely sends a call message — and
handles segmentation, retransmission, explicit and implicit
acknowledgments, duplicate-call suppression, and crash detection by
probing.  Message contents are uninterpreted bytes, so several RPC systems
with different representations can share it (§4.2), as the replicated
procedure call layer in :mod:`repro.core` does.
"""

from repro.pairedmsg.segments import (
    MSG_CALL,
    MSG_PROBE,
    MSG_PROBE_REPLY,
    MSG_RETURN,
    MessageTooLarge,
    Segment,
    SegmentFormatError,
    split_message,
)
from repro.pairedmsg.endpoint import (
    CompletedMessage,
    PairedEndpoint,
    PairedMessageConfig,
    PeerCrashed,
    SendTimeout,
)

__all__ = [
    "CompletedMessage",
    "MSG_CALL",
    "MSG_PROBE",
    "MSG_PROBE_REPLY",
    "MSG_RETURN",
    "MessageTooLarge",
    "PairedEndpoint",
    "PairedMessageConfig",
    "PeerCrashed",
    "Segment",
    "SegmentFormatError",
    "SendTimeout",
    "split_message",
]
