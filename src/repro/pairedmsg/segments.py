"""Segment format (Figure 4.2 of the paper).

A segment is a UDP datagram with an 8-byte header:

    byte 0   message type: 0 = call, 1 = return (2/3 = probe/probe reply,
             the "special control segment" of §4.2.3)
    byte 1   control bits: bit 0 = please ack, bit 1 = ack
    byte 2   total segments in the message (1..255)
    byte 3   segment number (data: 1..total; ack: cumulative ack number 0..total)
    bytes 4-7  call number, 32-bit unsigned, most significant byte first

A *data segment* carries a portion of the message after the header; a
*control segment* is header-only and carries or requests acknowledgment.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Final, List, Optional, Union

#: Anything the wire layer may hand us or we may hand it.  Payload slices
#: travel as :class:`memoryview` so reassembly never copies them; the
#: single ``bytes`` materialization happens at the application hand-off.
BytesLike = Union[bytes, bytearray, memoryview]

MSG_CALL: Final = 0
MSG_RETURN: Final = 1
MSG_PROBE: Final = 2
MSG_PROBE_REPLY: Final = 3

_MESSAGE_TYPES: Final = (MSG_CALL, MSG_RETURN, MSG_PROBE, MSG_PROBE_REPLY)

PLEASE_ACK: Final = 0x01
ACK: Final = 0x02

_HEADER: Final = struct.Struct("!BBBBI")
HEADER_SIZE: Final = _HEADER.size

MAX_SEGMENTS: Final = 255
MAX_CALL_NUMBER: Final = 0xFFFFFFFF


class SegmentFormatError(Exception):
    """A datagram could not be parsed as a protocol segment."""


class MessageTooLarge(Exception):
    """The message needs more than 255 segments (§4.2.1's byte-wide field)."""


@dataclasses.dataclass
class Segment:
    """One protocol segment, decoded.

    ``data`` may be any bytes-like object; :func:`split_message` passes
    memoryview slices so a large message is never copied segment-wise.
    The encoded datagram is cached (:meth:`wire`) so retransmissions and
    multicast fan-out reuse one buffer instead of repacking the header
    and recopying the payload per transmission.
    """

    msg_type: int
    please_ack: bool
    ack: bool
    total_segments: int
    segment_number: int
    call_number: int
    data: BytesLike = b""
    #: cached encodings; ``dataclasses.replace`` resets them.
    _wire: Optional[bytes] = dataclasses.field(
        default=None, init=False, repr=False, compare=False)
    _wire_marked: Optional[bytes] = dataclasses.field(
        default=None, init=False, repr=False, compare=False)

    def _control(self, marked: bool) -> int:
        control = ACK if self.ack else 0
        if marked or self.please_ack:
            control |= PLEASE_ACK
        return control

    def encode(self) -> bytes:
        """Encode into a fresh datagram: the payload crosses into exactly
        one new buffer (the ``join``); header-only segments are just the
        packed header."""
        header = _HEADER.pack(self.msg_type, self._control(False),
                              self.total_segments, self.segment_number,
                              self.call_number)
        if len(self.data):
            return b"".join((header, self.data))
        return header

    def encode_with(self, header_scratch: bytearray,
                    marked: bool = False) -> bytes:
        """Encode using a caller-owned ``HEADER_SIZE`` scratch buffer.

        The header is packed in place — no per-encode header object —
        and the datagram is materialized by a single ``join``.  With
        ``marked=True`` the *please ack* bit is set directly in the
        header, so a retransmission wire is built without ever touching
        (or forcing) the plain wire.
        """
        _HEADER.pack_into(header_scratch, 0, self.msg_type,
                          self._control(marked), self.total_segments,
                          self.segment_number, self.call_number)
        if len(self.data):
            return b"".join((header_scratch, self.data))
        return bytes(header_scratch)

    def wire(self) -> bytes:
        """The encoded datagram, computed once and cached."""
        wire = self._wire
        if wire is None:
            wire = self._wire = self.encode()
        return wire

    def wire_marked(self) -> bytes:
        """The datagram with *please ack* set, as retransmissions send it
        (§4.2.2).  Built directly from the header fields and the payload
        view in one materialization — the plain wire is neither forced
        nor copied — and itself cached for later rounds."""
        wire = self._wire_marked
        if wire is None:
            if self.please_ack:
                wire = self.wire()
            else:
                header = _HEADER.pack(self.msg_type, self._control(True),
                                      self.total_segments,
                                      self.segment_number, self.call_number)
                if len(self.data):
                    wire = b"".join((header, self.data))
                else:
                    wire = header
            self._wire_marked = wire
        return wire

    @property
    def is_control(self) -> bool:
        return not len(self.data) and (self.ack or self.msg_type in
                                       (MSG_PROBE, MSG_PROBE_REPLY))

    def __repr__(self) -> str:
        kind = {MSG_CALL: "call", MSG_RETURN: "return",
                MSG_PROBE: "probe", MSG_PROBE_REPLY: "probe-reply"}[self.msg_type]
        flags = ""
        if self.please_ack:
            flags += "+please_ack"
        if self.ack:
            flags += "+ack"
        return "<Segment %s#%d %d/%d%s (%d bytes)>" % (
            kind, self.call_number, self.segment_number,
            self.total_segments, flags, len(self.data))


def decode(payload: BytesLike) -> Segment:
    """Parse a datagram into a :class:`Segment`.

    Zero-copy: the header is unpacked in place and ``data`` is a
    :class:`memoryview` slice over the datagram, so the payload bytes
    are never duplicated between the wire and reassembly.
    """
    if len(payload) < HEADER_SIZE:
        raise SegmentFormatError("short datagram: %d bytes" % len(payload))
    msg_type, control, total, number, call_number = _HEADER.unpack_from(
        payload, 0)
    if msg_type not in _MESSAGE_TYPES:
        raise SegmentFormatError("bad message type: %d" % msg_type)
    if control & ~(PLEASE_ACK | ACK):
        raise SegmentFormatError("unknown control bits: %#x" % control)
    view = payload if type(payload) is memoryview else memoryview(payload)
    return Segment(
        msg_type=msg_type,
        please_ack=bool(control & PLEASE_ACK),
        ack=bool(control & ACK),
        total_segments=total,
        segment_number=number,
        call_number=call_number,
        data=view[HEADER_SIZE:],
    )


def split_message(msg_type: int, call_number: int, data: BytesLike,
                  max_data: int) -> List[Segment]:
    """Divide a message into numbered segments (§4.2.2).

    Segment numbers start at 1; every segment of the message carries the
    same type, total count, and call number.
    """
    if max_data < 1:
        raise ValueError("max_data must be at least 1")
    if not 0 <= call_number <= MAX_CALL_NUMBER:
        raise ValueError("call number out of range: %r" % call_number)
    view = memoryview(data)
    chunks = [view[i:i + max_data]
              for i in range(0, len(data), max_data)] or [b""]
    if len(chunks) > MAX_SEGMENTS:
        raise MessageTooLarge(
            "%d bytes needs %d segments (max %d)" % (
                len(data), len(chunks), MAX_SEGMENTS))
    return [
        Segment(msg_type=msg_type, please_ack=False, ack=False,
                total_segments=len(chunks), segment_number=index + 1,
                call_number=call_number, data=chunk)
        for index, chunk in enumerate(chunks)
    ]


def make_ack(msg_type: int, call_number: int, total_segments: int,
             ack_number: int) -> Segment:
    """An explicit acknowledgment: all segments <= ack_number received."""
    return Segment(msg_type=msg_type, please_ack=False, ack=True,
                   total_segments=total_segments, segment_number=ack_number,
                   call_number=call_number)


def make_probe(call_number: int) -> Segment:
    """The §4.2.3 crash-detection probe ("are you there?")."""
    return Segment(msg_type=MSG_PROBE, please_ack=True, ack=False,
                   total_segments=1, segment_number=1,
                   call_number=call_number)


def make_probe_reply(call_number: int) -> Segment:
    return Segment(msg_type=MSG_PROBE_REPLY, please_ack=False, ack=True,
                   total_segments=1, segment_number=1,
                   call_number=call_number)
