"""Segment format (Figure 4.2 of the paper).

A segment is a UDP datagram with an 8-byte header:

    byte 0   message type: 0 = call, 1 = return (2/3 = probe/probe reply,
             the "special control segment" of §4.2.3)
    byte 1   control bits: bit 0 = please ack, bit 1 = ack
    byte 2   total segments in the message (1..255)
    byte 3   segment number (data: 1..total; ack: cumulative ack number 0..total)
    bytes 4-7  call number, 32-bit unsigned, most significant byte first

A *data segment* carries a portion of the message after the header; a
*control segment* is header-only and carries or requests acknowledgment.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import List

MSG_CALL = 0
MSG_RETURN = 1
MSG_PROBE = 2
MSG_PROBE_REPLY = 3

_MESSAGE_TYPES = (MSG_CALL, MSG_RETURN, MSG_PROBE, MSG_PROBE_REPLY)

PLEASE_ACK = 0x01
ACK = 0x02

_HEADER = struct.Struct("!BBBBI")
HEADER_SIZE = _HEADER.size

MAX_SEGMENTS = 255
MAX_CALL_NUMBER = 0xFFFFFFFF


class SegmentFormatError(Exception):
    """A datagram could not be parsed as a protocol segment."""


class MessageTooLarge(Exception):
    """The message needs more than 255 segments (§4.2.1's byte-wide field)."""


@dataclasses.dataclass
class Segment:
    """One protocol segment, decoded.

    ``data`` may be any bytes-like object; :func:`split_message` passes
    memoryview slices so a large message is never copied segment-wise.
    The encoded datagram is cached (:meth:`wire`) so retransmissions and
    multicast fan-out reuse one buffer instead of repacking the header
    and recopying the payload per transmission.
    """

    msg_type: int
    please_ack: bool
    ack: bool
    total_segments: int
    segment_number: int
    call_number: int
    data: bytes = b""
    #: cached encodings; ``dataclasses.replace`` resets them.
    _wire: bytes = dataclasses.field(
        default=None, init=False, repr=False, compare=False)
    _wire_marked: bytes = dataclasses.field(
        default=None, init=False, repr=False, compare=False)

    def encode(self) -> bytes:
        control = (PLEASE_ACK if self.please_ack else 0) | (ACK if self.ack else 0)
        header = _HEADER.pack(self.msg_type, control, self.total_segments,
                              self.segment_number, self.call_number)
        return header + bytes(self.data)

    def wire(self) -> bytes:
        """The encoded datagram, computed once and cached."""
        wire = self._wire
        if wire is None:
            wire = self._wire = self.encode()
        return wire

    def wire_marked(self) -> bytes:
        """The datagram with *please ack* set, as retransmissions send it
        (§4.2.2).  Derived from the cached plain wire by splicing the
        control byte — the header is never repacked and the payload never
        recopied from the message — and itself cached for later rounds."""
        wire = self._wire_marked
        if wire is None:
            if self.please_ack:
                wire = self.wire()
            else:
                plain = bytearray(self.wire())
                plain[1] |= PLEASE_ACK
                wire = bytes(plain)
            self._wire_marked = wire
        return wire

    @property
    def is_control(self) -> bool:
        return not self.data and (self.ack or self.msg_type in
                                  (MSG_PROBE, MSG_PROBE_REPLY))

    def __repr__(self) -> str:
        kind = {MSG_CALL: "call", MSG_RETURN: "return",
                MSG_PROBE: "probe", MSG_PROBE_REPLY: "probe-reply"}[self.msg_type]
        flags = ""
        if self.please_ack:
            flags += "+please_ack"
        if self.ack:
            flags += "+ack"
        return "<Segment %s#%d %d/%d%s (%d bytes)>" % (
            kind, self.call_number, self.segment_number,
            self.total_segments, flags, len(self.data))


def decode(payload: bytes) -> Segment:
    """Parse a datagram into a :class:`Segment`."""
    if len(payload) < HEADER_SIZE:
        raise SegmentFormatError("short datagram: %d bytes" % len(payload))
    msg_type, control, total, number, call_number = _HEADER.unpack(
        payload[:HEADER_SIZE])
    if msg_type not in _MESSAGE_TYPES:
        raise SegmentFormatError("bad message type: %d" % msg_type)
    if control & ~(PLEASE_ACK | ACK):
        raise SegmentFormatError("unknown control bits: %#x" % control)
    return Segment(
        msg_type=msg_type,
        please_ack=bool(control & PLEASE_ACK),
        ack=bool(control & ACK),
        total_segments=total,
        segment_number=number,
        call_number=call_number,
        data=payload[HEADER_SIZE:],
    )


def split_message(msg_type: int, call_number: int, data: bytes,
                  max_data: int) -> List[Segment]:
    """Divide a message into numbered segments (§4.2.2).

    Segment numbers start at 1; every segment of the message carries the
    same type, total count, and call number.
    """
    if max_data < 1:
        raise ValueError("max_data must be at least 1")
    if not 0 <= call_number <= MAX_CALL_NUMBER:
        raise ValueError("call number out of range: %r" % call_number)
    view = memoryview(data)
    chunks = [view[i:i + max_data]
              for i in range(0, len(data), max_data)] or [b""]
    if len(chunks) > MAX_SEGMENTS:
        raise MessageTooLarge(
            "%d bytes needs %d segments (max %d)" % (
                len(data), len(chunks), MAX_SEGMENTS))
    return [
        Segment(msg_type=msg_type, please_ack=False, ack=False,
                total_segments=len(chunks), segment_number=index + 1,
                call_number=call_number, data=chunk)
        for index, chunk in enumerate(chunks)
    ]


def make_ack(msg_type: int, call_number: int, total_segments: int,
             ack_number: int) -> Segment:
    """An explicit acknowledgment: all segments <= ack_number received."""
    return Segment(msg_type=msg_type, please_ack=False, ack=True,
                   total_segments=total_segments, segment_number=ack_number,
                   call_number=call_number)


def make_probe(call_number: int) -> Segment:
    """The §4.2.3 crash-detection probe ("are you there?")."""
    return Segment(msg_type=MSG_PROBE, please_ack=True, ack=False,
                   total_segments=1, segment_number=1,
                   call_number=call_number)


def make_probe_reply(call_number: int) -> Segment:
    return Segment(msg_type=MSG_PROBE_REPLY, please_ack=False, ack=True,
                   total_segments=1, segment_number=1,
                   call_number=call_number)
