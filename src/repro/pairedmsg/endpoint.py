"""The paired message endpoint: send/receive protocol state machines (§4.2).

One :class:`PairedEndpoint` lives inside an OS process and multiplexes
paired-message exchanges with any number of peers over a single datagram
socket.  The protocol follows §4.2.2–§4.2.4 of the paper:

*Sending*: a message is divided into numbered segments, all transmitted
initially with no control bits; the sender then periodically retransmits
the first unacknowledged segment with *please ack* set, while removing
acknowledged segments from its queue.

*Receiving*: the receiver tracks the highest consecutively received
segment number (the acknowledgment number); on *please ack* it sends an
explicit acknowledgment; an out-of-order arrival triggers an immediate
acknowledgment so the sender retransmits the first lost segment.

*Implicit acknowledgments*: a return segment acknowledges the call with
the same call number; a call segment acknowledges any earlier return.

*Postponed acks*: when a segment completes a call message, the explicit
acknowledgment is postponed once in the hope that the return message will
serve as the implicit acknowledgment (§4.2.4).

*Crash detection*: while waiting for a return, the client probes the
server with a special control segment; silence beyond a timeout raises
:class:`PeerCrashed` (§4.2.3).

Every packet transmission and reception goes through the owning process's
syscall wrappers, so the Table 4.3 execution profile falls out of running
this code.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.host.process import OsProcess
from repro.net.addresses import ProcessAddress
from repro.obs import events as obs_events
from repro.pairedmsg import segments as seg
from repro.pairedmsg.segments import (
    MSG_CALL,
    MSG_PROBE,
    MSG_PROBE_REPLY,
    MSG_RETURN,
    Segment,
    SegmentFormatError,
)
from repro.sim.events import Condition, Event, Queue
from repro.sim.kernel import AnyOf, Sleep


@dataclasses.dataclass
class PairedMessageConfig:
    """Protocol tunables (milliseconds)."""

    max_segment_data: int = 1024
    retransmit_interval: float = 40.0
    max_retries: int = 10
    #: False (default): the Circus scheme — send all segments, retransmit
    #: the first unacknowledged one periodically (§4.2.2).  True: the
    #: Xerox PARC scheme — "an explicit acknowledgment of every segment
    #: but the last", one segment in flight at a time (§4.2.5); half the
    #: buffering, twice the packets.
    stop_and_wait: bool = False
    #: §4.2.4: "the retransmission strategy can be changed to retransmit
    #: all the remaining unacknowledged segments rather than just the
    #: first, depending on the reliability characteristics of the
    #: network."  True trades extra packets for fewer retransmission
    #: rounds on very lossy links.
    retransmit_all: bool = False
    #: opt-in ack coalescing: instead of transmitting every explicit
    #: acknowledgment immediately, hold the highest cumulative ack per
    #: (peer, message) and flush them in one batch per flush interval.
    #: Off by default — coalescing trades ack latency (and therefore
    #: some extra retransmissions on lossy links) for fewer control
    #: packets, so the paper-faithful tables keep it disabled.
    delayed_acks: bool = False
    ack_flush_interval: float = 10.0
    probe_interval: float = 150.0   # silence before probing a peer
    crash_timeout: float = 800.0    # silence before declaring a crash
    delivered_memory: int = 128     # completed call numbers kept per peer
    #: user-mode CPU charged per message sent / received (protocol
    #: processing outside the kernel: header construction, queue
    #: management).  Calibrated so Circus(n=1) lands near Table 4.1.
    user_cost_send: float = 2.0
    user_cost_receive: float = 3.5


@dataclasses.dataclass
class CompletedMessage:
    """A fully reassembled incoming message, handed to the layer above."""

    peer: ProcessAddress
    msg_type: int
    call_number: int
    data: bytes


class PeerCrashed(Exception):
    """The peer stopped answering probes (crash or partition, §4.3.5)."""

    def __init__(self, peer: ProcessAddress):
        super().__init__("peer %s presumed crashed" % (peer,))
        self.peer = peer


class SendTimeout(Exception):
    """A message was retransmitted max_retries times with no acknowledgment."""

    def __init__(self, peer: ProcessAddress, call_number: int):
        super().__init__("send to %s (call %d) timed out" % (peer, call_number))
        self.peer = peer
        self.call_number = call_number


class _OutgoingTransfer:
    """Sender-side state for one message (§4.2.2's queue of unacked segments)."""

    def __init__(self, endpoint: "PairedEndpoint", peer: ProcessAddress,
                 msg_type: int, call_number: int, segs: Sequence[Segment]):
        self.endpoint = endpoint
        self.peer = peer
        self.msg_type = msg_type
        self.call_number = call_number
        #: may be shared between the per-peer transfers of one multicast
        #: send — per-transfer state lives in ``unacked``, not here.
        self.segments = segs
        self.unacked: Dict[int, Segment] = {s.segment_number: s for s in segs}
        self.done = Event(endpoint.sim, "xfer-done")
        self.retries = 0
        #: virtual time of the next retransmission round, maintained by
        #: the endpoint's retransmit scheduler.
        self.next_due = 0.0
        #: True while an ephemeral worker process owns this transfer's
        #: current retransmission round.
        self.worker_active = False
        #: signalled whenever the acknowledged prefix advances (used by
        #: the stop-and-wait sender).
        self.progress = Condition(endpoint.sim, "xfer-progress")

    @property
    def key(self) -> Tuple[ProcessAddress, int, int]:
        return (self.peer, self.msg_type, self.call_number)

    def first_unacked(self) -> Optional[Segment]:
        if not self.unacked:
            return None
        return self.unacked[min(self.unacked)]

    def ack_through(self, ack_number: int) -> None:
        """Explicit cumulative acknowledgment: segments <= n received."""
        acked = [n for n in self.unacked if n <= ack_number]
        for n in acked:
            del self.unacked[n]
        if acked:
            self.retries = 0
            self.progress.signal(ack_number)
        if not self.unacked:
            self.complete()

    def complete(self) -> None:
        self.unacked = {}
        if not self.done.fired:
            self.done.fire("acked")
            self.endpoint._transfer_finished()

    def fail(self) -> None:
        if not self.done.fired:
            sim = self.endpoint.sim
            if sim.bus.active:
                sim.bus.emit(obs_events.TransferTimedOut(
                    t=sim.now, endpoint=self.endpoint.addr, peer=self.peer,
                    call_number=self.call_number,
                    proc=self.endpoint.process.name))
            self.done.fire("timeout")
            self.endpoint._transfer_finished()

    def cancel(self) -> None:
        """Abandon silently: the peer was declared crashed (§4.2.3), so
        the transfer ends with neither an ack nor a timeout — and, above
        all, no further retransmission."""
        self.unacked = {}
        if not self.done.fired:
            self.done.fire("crashed")
            self.endpoint._transfer_finished()


class _IncomingAssembly:
    """Receiver-side state for one message: segment queue + ack number."""

    def __init__(self, peer: ProcessAddress, msg_type: int,
                 call_number: int, total: int):
        self.peer = peer
        self.msg_type = msg_type
        self.call_number = call_number
        self.total = total
        #: segment payload views, joined into ``bytes`` exactly once at
        #: the application hand-off (:meth:`assemble`).
        self.received: Dict[int, seg.BytesLike] = {}
        self.ack_number = 0   # highest consecutive segment number received

    def add(self, segment: Segment) -> bool:
        """Insert a data segment; returns True if it was new."""
        if segment.segment_number in self.received:
            return False
        self.received[segment.segment_number] = segment.data
        while (self.ack_number + 1) in self.received:
            self.ack_number += 1
        return True

    @property
    def complete(self) -> bool:
        return self.ack_number == self.total

    def assemble(self) -> bytes:
        return b"".join(self.received[n] for n in range(1, self.total + 1))


class PairedEndpoint:
    """A connectionless paired-message protocol instance in one process."""

    def __init__(self, process: OsProcess, port: Optional[int] = None,
                 config: Optional[PairedMessageConfig] = None):
        self.process = process
        self.sim = process.sim
        self.config = config or PairedMessageConfig()
        self.sock = process.udp_socket(port)
        #: completed incoming call messages, for the RPC layer.
        self.incoming_calls: Queue = Queue(self.sim, "incoming-calls")
        self._sends: Dict[Tuple[ProcessAddress, int, int], _OutgoingTransfer] = {}
        self._assemblies: Dict[Tuple[ProcessAddress, int, int], _IncomingAssembly] = {}
        self._delivered_calls: Dict[ProcessAddress, "collections.OrderedDict"] = {}
        self._delivered_returns: Dict[ProcessAddress, "collections.OrderedDict"] = {}
        self._completed_returns: Dict[Tuple[ProcessAddress, int], bytes] = {}
        self._return_waiters: Dict[Tuple[ProcessAddress, int], Event] = {}
        self._discarded_returns: set = set()
        self._last_heard: Dict[ProcessAddress, float] = {}
        self._pending_control: List[Tuple[Segment, ProcessAddress]] = []
        #: deterministic message-path work counters, surfaced by
        #: :meth:`stats` and aggregated by ``repro.bench.perf``.
        self.counters: Dict[str, int] = {
            "segment_encodes": 0,    # plain wires materialized (one join)
            "wire_patches": 0,       # marked wires materialized (one join)
            "wire_cache_hits": 0,    # transmissions served from a cache
            "packets_sent": 0,       # datagrams handed to sendmsg
            "daemons_spawned": 0,    # helper processes this endpoint made
            "retransmit_rounds": 0,
            "acks_queued": 0,
            "acks_sent": 0,
            "acks_coalesced": 0,
            "bytes_copied": 0,       # payload+header bytes written into
                                     # fresh message-path buffers (see
                                     # docs/PERFORMANCE.md): one wire per
                                     # segment, one marked wire per
                                     # retransmitted segment, one join at
                                     # the application hand-off — decode
                                     # and reassembly contribute zero.
        }
        #: the single preallocated header buffer all of this endpoint's
        #: encodes pack into (zero per-encode header objects).
        self._header_scratch = bytearray(seg.HEADER_SIZE)
        #: transfers under watch by the per-endpoint retransmit scheduler.
        self._watched: Dict[Tuple[ProcessAddress, int, int],
                            _OutgoingTransfer] = {}
        self._sched_wake = Condition(self.sim, "pm-sched-wake")
        self._scheduler = None
        #: coalesced explicit acks (config.delayed_acks): the highest
        #: cumulative ack per (peer, msg_type, call_number), flushed in
        #: one batch per ack_flush_interval by the scheduler.
        self._held_acks: Dict[Tuple[ProcessAddress, int, int], Segment] = {}
        self._ack_flush_at: Optional[float] = None
        self.closed = False
        self.counters["daemons_spawned"] += 1
        self._receiver = process.spawn(self._receive_loop(), name="pm-recv",
                                       daemon=True)

    @property
    def addr(self) -> ProcessAddress:
        return self.sock.addr

    def __repr__(self) -> str:
        return "<PairedEndpoint %s>" % (self.addr,)

    # ------------------------------------------------------------------
    # Wire encoding (encode-once) and transmission accounting
    # ------------------------------------------------------------------

    def _wire(self, segment: Segment) -> bytes:
        """The segment's datagram, encoding at most once per segment.

        The header packs into the endpoint's preallocated scratch buffer
        and the payload view crosses into exactly one new buffer (the
        datagram itself) — the single copy the wire actually requires.
        """
        wire = segment._wire
        if wire is not None:
            self.counters["wire_cache_hits"] += 1
            return wire
        self.counters["segment_encodes"] += 1
        self.counters["bytes_copied"] += seg.HEADER_SIZE + len(segment.data)
        wire = segment.encode_with(self._header_scratch)
        segment._wire = wire
        return wire

    def _wire_marked(self, segment: Segment) -> bytes:
        """The *please ack* retransmission datagram, materialized once
        per segment directly from the header fields and the payload view
        (the plain wire is neither forced nor recopied)."""
        wire = segment._wire_marked
        if wire is not None:
            self.counters["wire_cache_hits"] += 1
            return wire
        if segment.please_ack:
            wire = self._wire(segment)
        else:
            self.counters["wire_patches"] += 1
            self.counters["bytes_copied"] += (seg.HEADER_SIZE
                                              + len(segment.data))
            wire = segment.encode_with(self._header_scratch, marked=True)
        segment._wire_marked = wire
        return wire

    def _transmit(self, wire: bytes, dst: ProcessAddress):
        self.counters["packets_sent"] += 1
        yield from self.process.sendmsg(self.sock, wire, dst)

    def _spawn_helper(self, gen, name: str):
        self.counters["daemons_spawned"] += 1
        return self.process.spawn(gen, name=name, daemon=True)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send_message(self, peer: ProcessAddress, msg_type: int,
                     call_number: int, data: bytes):
        """Generator: begin transmitting a message; returns the transfer.

        The transfer's ``done`` event fires with ``"acked"`` when every
        segment has been (explicitly or implicitly) acknowledged, or
        ``"timeout"`` after max_retries unanswered retransmissions.
        """
        self._require_open()
        key = (peer, msg_type, call_number)
        if key in self._sends:
            raise RuntimeError("duplicate send: %r" % (key,))
        segs = seg.split_message(msg_type, call_number, data,
                                 self.config.max_segment_data)
        transfer = _OutgoingTransfer(self, peer, msg_type, call_number, segs)
        self._sends[key] = transfer
        if self.sim.bus.active:
            self.sim.bus.emit(obs_events.MessageSent(
                t=self.sim.now, endpoint=self.addr, peer=peer,
                msg_type=msg_type, call_number=call_number,
                segments=len(segs), size=len(data),
                proc=self.process.name))
        # Protocol processing in user mode, then a timestamp and the
        # retransmission timer (the setitimer traffic of Table 4.3).
        yield from self.process.compute(self.config.user_cost_send)
        yield from self.process.syscall("setitimer")
        if self.config.stop_and_wait and len(segs) > 1:
            yield from self._send_stop_and_wait(transfer)
        else:
            for segment in segs:
                yield from self._transmit(self._wire(segment), peer)
        yield from self.process.syscall("gettimeofday")
        self._watch(transfer)
        return transfer

    def _send_stop_and_wait(self, transfer: _OutgoingTransfer):
        """The PARC scheme (§4.2.5): every segment but the last requests
        an explicit acknowledgment and waits for it before the next is
        sent — one segment's worth of buffering, twice the segments."""
        config = self.config
        for segment in transfer.segments[:-1]:
            # Encoded once per segment: the marked wire is spliced from
            # the cached plain encoding and reused by every retry below.
            marked_wire = self._wire_marked(segment)
            retries = 0
            sent_once = False
            while segment.segment_number in transfer.unacked:
                if sent_once and self.sim.bus.active:
                    self.sim.bus.emit(obs_events.SegmentRetransmitted(
                        t=self.sim.now, endpoint=self.addr,
                        peer=transfer.peer, msg_type=transfer.msg_type,
                        call_number=transfer.call_number,
                        segment=segment.segment_number,
                        proc=self.process.name))
                sent_once = True
                yield from self._transmit(marked_wire, transfer.peer)
                index, _ = yield AnyOf(transfer.progress, transfer.done,
                                       Sleep(config.retransmit_interval))
                if index == 1:
                    return
                if index == 2:
                    retries += 1
                    if retries > config.max_retries:
                        transfer.fail()
                        return
        last = transfer.segments[-1]
        yield from self._transmit(self._wire(last), transfer.peer)

    def send_message_multicast(self, peers, msg_type: int, call_number: int,
                               data: bytes):
        """Generator: transmit one message to several peers with hardware
        multicast — one sendmsg per segment instead of one per peer per
        segment (§4.3.3).  Retransmission remains point-to-point.

        Returns the list of per-peer transfers.
        """
        self._require_open()
        peers = list(peers)
        # One immutable segment tuple shared by every per-peer transfer:
        # the segments (and their cached wire encodings) are common, only
        # the per-transfer unacked bookkeeping is private.
        segs = tuple(seg.split_message(msg_type, call_number, data,
                                       self.config.max_segment_data))
        transfers = []
        for peer in peers:
            key = (peer, msg_type, call_number)
            if key in self._sends:
                raise RuntimeError("duplicate send: %r" % (key,))
            transfer = _OutgoingTransfer(self, peer, msg_type, call_number,
                                         segs)
            self._sends[key] = transfer
            transfers.append(transfer)
            if self.sim.bus.active:
                self.sim.bus.emit(obs_events.MessageSent(
                    t=self.sim.now, endpoint=self.addr, peer=peer,
                    msg_type=msg_type, call_number=call_number,
                    segments=len(segs), size=len(data),
                    proc=self.process.name))
        yield from self.process.compute(self.config.user_cost_send)
        yield from self.process.syscall("setitimer")
        for segment in segs:
            self.counters["packets_sent"] += 1
            yield from self.process.sendmsg_multicast(
                self.sock, self._wire(segment), peers)
        yield from self.process.syscall("gettimeofday")
        for transfer in transfers:
            self._watch(transfer)
        return transfers

    def _abandon_peer(self, peer: ProcessAddress) -> None:
        """§4.2.3: a peer declared crashed gets silence — cancel every
        outstanding transfer addressed to it so the retransmission loops
        stop.  New calls may still be sent later (the peer may restart);
        only in-flight exchanges are abandoned."""
        for key, transfer in list(self._sends.items()):
            if key[0] == peer and not transfer.done.fired:
                transfer.cancel()

    def forget_return(self, peer: ProcessAddress, call_number: int) -> None:
        """Discard a return message nobody will wait for (a first-come
        collator decided early, §4.3.4): drop it if already complete and
        mark it so a late completion is dropped on arrival."""
        key = (peer, call_number)
        if self._completed_returns.pop(key, None) is not None:
            return
        waiter = self._return_waiters.pop(key, None)
        self._discarded_returns.add(key)

    def send_call(self, peer: ProcessAddress, call_number: int, data: bytes):
        return (yield from self.send_message(peer, MSG_CALL, call_number, data))

    def send_return(self, peer: ProcessAddress, call_number: int, data: bytes):
        return (yield from self.send_message(peer, MSG_RETURN, call_number, data))

    # ------------------------------------------------------------------
    # The per-endpoint retransmit scheduler
    # ------------------------------------------------------------------
    #
    # One timer-wheel process per endpoint walks the due transfers,
    # replacing the old design of one ``pm-rexmit-%d`` daemon per call:
    # O(calls) process spawns and kernel timer wake-ups collapse to O(1)
    # per endpoint.  The scheduler is timing-exact with the old daemons:
    # a round fires at the same virtual time the per-transfer timer
    # would have, with the same syscall sequence, and the timer-cancel
    # ``setitimer`` is still charged when a transfer finishes.  When
    # several transfers are due (or finish) at once, ephemeral worker
    # processes restore the old daemons' concurrency so the packet
    # timeline is unchanged.

    def _watch(self, transfer: _OutgoingTransfer) -> None:
        """Place a transfer under the retransmit scheduler's watch."""
        transfer.next_due = self.sim.now + self.config.retransmit_interval
        self._watched[transfer.key] = transfer
        self._ensure_scheduler()

    def _ensure_scheduler(self) -> None:
        if self._scheduler is None or not self._scheduler.alive:
            self._scheduler = self._spawn_helper(self._scheduler_loop(),
                                                 name="pm-sched")
        else:
            self._sched_wake.signal()

    def _transfer_finished(self) -> None:
        """A transfer's ``done`` fired: wake the scheduler so it cancels
        the retransmission timer and drops the sender-side state at the
        completion time, exactly as the per-transfer daemon did."""
        if self._scheduler is not None and self._scheduler.alive:
            self._sched_wake.signal()

    def _scheduler_loop(self):
        while True:
            # Finished transfers first: charge the timer-cancel setitimer
            # and drop the _sends entry (the old daemon's epilogue).
            finished = [t for t in self._watched.values()
                        if t.done.fired and not t.worker_active]
            if finished:
                for transfer in finished:
                    del self._watched[transfer.key]
                if len(finished) == 1:
                    yield from self._cancel_timer(finished[0])
                else:
                    # Simultaneous completions (e.g. _abandon_peer) were
                    # reaped by concurrent daemons; keep that concurrency.
                    for transfer in finished:
                        self._spawn_helper(self._cancel_timer(transfer),
                                           name="pm-reap")
                continue
            now = self.sim.now
            due = [t for t in self._watched.values()
                   if not t.worker_active and not t.done.fired
                   and t.next_due <= now]
            if due:
                if len(due) == 1 and len(self._watched) == 1:
                    # The only watched transfer: nothing else can come
                    # due mid-round, so run it inline with no spawn.
                    yield from self._retransmit_round(due[0])
                else:
                    for transfer in due:
                        transfer.worker_active = True
                        self._spawn_helper(self._round_worker(transfer),
                                           name="pm-rexmit")
                continue
            if (self._ack_flush_at is not None
                    and self._ack_flush_at <= now):
                yield from self._flush_held_acks()
                continue
            deadlines = [t.next_due for t in self._watched.values()
                         if not t.worker_active and not t.done.fired]
            if self._ack_flush_at is not None:
                deadlines.append(self._ack_flush_at)
            if not deadlines:
                yield self._sched_wake
                continue
            wake = min(deadlines)
            if wake <= now:
                continue
            yield AnyOf(self._sched_wake, Sleep(wake - now))

    def _cancel_timer(self, transfer: _OutgoingTransfer):
        # Cancelling the retransmission timer is one more setitimer.
        yield from self.process.syscall("setitimer")
        self._sends.pop(transfer.key, None)

    def _retransmit_round(self, transfer: _OutgoingTransfer):
        """One retransmission round (§4.2.2): the body of the old
        per-transfer loop, with the wire bytes served from the cache."""
        config = self.config
        if transfer.done.fired:
            return
        first = transfer.first_unacked()
        if first is None:
            transfer.complete()
            return
        transfer.retries += 1
        if transfer.retries > config.max_retries:
            transfer.fail()
            return
        if config.retransmit_all:
            outstanding = [transfer.unacked[n]
                           for n in sorted(transfer.unacked)]
        else:
            outstanding = [first]
        self.counters["retransmit_rounds"] += 1
        yield from self.process.sigblock()
        for segment in outstanding:
            if self.sim.bus.active:
                self.sim.bus.emit(obs_events.SegmentRetransmitted(
                    t=self.sim.now, endpoint=self.addr,
                    peer=transfer.peer, msg_type=transfer.msg_type,
                    call_number=transfer.call_number,
                    segment=segment.segment_number,
                    proc=self.process.name))
            yield from self._transmit(self._wire_marked(segment),
                                      transfer.peer)
        yield from self.process.sigsetmask()
        transfer.next_due = self.sim.now + config.retransmit_interval

    def _round_worker(self, transfer: _OutgoingTransfer):
        try:
            yield from self._retransmit_round(transfer)
        finally:
            transfer.worker_active = False
            self._sched_wake.signal()

    def _flush_held_acks(self):
        """Transmit the coalesced cumulative acks (config.delayed_acks)
        in one batch — one control segment per held (peer, message)."""
        held = self._held_acks
        self._held_acks = {}
        self._ack_flush_at = None
        for (dst, _msg_type, _call_number), control in held.items():
            self.counters["acks_sent"] += 1
            yield from self._transmit(self._wire(control), dst)

    # ------------------------------------------------------------------
    # Waiting for a return message (client side)
    # ------------------------------------------------------------------

    def wait_return(self, peer: ProcessAddress, call_number: int):
        """Generator: the return message for a call, with crash detection.

        Probes the peer during long silences (§4.2.3); raises
        :class:`PeerCrashed` when the silence exceeds the crash timeout.
        """
        self._require_open()
        config = self.config
        key = (peer, call_number)
        started = self.sim.now
        self._last_heard.setdefault(peer, started)
        while True:
            if key in self._completed_returns:
                data = self._completed_returns.pop(key)
                self._return_waiters.pop(key, None)
                yield from self.process.compute(config.user_cost_receive)
                yield from self.process.syscall("gettimeofday")
                return data
            waiter = self._return_waiters.get(key)
            if waiter is None or waiter.fired:
                waiter = Event(self.sim, "return-%s-%d" % (peer, call_number))
                self._return_waiters[key] = waiter
            index, _ = yield AnyOf(waiter, Sleep(config.probe_interval))
            if index == 0:
                continue  # loop re-checks _completed_returns
            silence = self.sim.now - self._last_heard.get(peer, started)
            if silence >= config.crash_timeout:
                self._return_waiters.pop(key, None)
                if self.sim.bus.active:
                    self.sim.bus.emit(obs_events.PeerCrashDeclared(
                        t=self.sim.now, endpoint=self.addr, peer=peer,
                        silence=silence, call_number=call_number,
                        proc=self.process.name))
                self._abandon_peer(peer)
                raise PeerCrashed(peer)
            if silence >= config.probe_interval:
                probe = seg.make_probe(call_number)
                if self.sim.bus.active:
                    self.sim.bus.emit(obs_events.ProbeSent(
                        t=self.sim.now, endpoint=self.addr, peer=peer,
                        call_number=call_number, proc=self.process.name))
                yield from self._transmit(self._wire(probe), peer)

    def call(self, peer: ProcessAddress, call_number: int, data: bytes):
        """Generator: a complete one-to-one exchange (send call, await return).

        This is the conventional-RPC degenerate case the Table 4.1 tests
        exercise with a troupe of one.
        """
        yield from self.send_call(peer, call_number, data)
        return (yield from self.wait_return(peer, call_number))

    # ------------------------------------------------------------------
    # Receiving (server side surface)
    # ------------------------------------------------------------------

    def ping(self, peer: ProcessAddress, timeout: float = 500.0):
        """Generator: an "are you there?" probe (§6.1's null call used by
        the binding agent's garbage collector).  Returns True if the peer
        answered within the timeout."""
        self._require_open()
        sent_at = self.sim.now
        probe = seg.make_probe(0)
        if self.sim.bus.active:
            self.sim.bus.emit(obs_events.ProbeSent(
                t=self.sim.now, endpoint=self.addr, peer=peer,
                call_number=0, proc=self.process.name))
        yield from self._transmit(self._wire(probe), peer)
        deadline = sent_at + timeout
        while self.sim.now < deadline:
            remaining = deadline - self.sim.now
            step = min(remaining, 20.0)
            yield Sleep(step)
            heard = self._last_heard.get(peer)
            if heard is not None and heard >= sent_at:
                return True
        return False

    def next_call(self):
        """Generator: the next completed incoming call message."""
        self._require_open()
        message = yield self.incoming_calls.get()
        yield from self.process.compute(self.config.user_cost_receive)
        return message

    # ------------------------------------------------------------------
    # The receive loop
    # ------------------------------------------------------------------

    def _receive_loop(self):
        while not self.closed and self.process.alive:
            yield from self.process.select([self.sock])
            datagram = yield from self.process.recvmsg(self.sock)
            yield from self.process.sigblock()
            try:
                segment = seg.decode(datagram.payload)
            except SegmentFormatError:
                segment = None  # garbled: checksum already made it "lost"
            if segment is not None:
                self._handle_segment(datagram.src, segment)
            yield from self.process.sigsetmask()
            # Flush control traffic (acks, probe replies) generated above.
            while self._pending_control:
                control, dst = self._pending_control.pop(0)
                if control.ack:
                    self.counters["acks_sent"] += 1
                yield from self._transmit(self._wire(control), dst)

    def _handle_segment(self, src: ProcessAddress, segment: Segment) -> None:
        self._last_heard[src] = self.sim.now
        if segment.msg_type == MSG_PROBE:
            self._queue_control(seg.make_probe_reply(segment.call_number), src)
            return
        if segment.msg_type == MSG_PROBE_REPLY:
            return  # its only effect is updating _last_heard
        if segment.ack:
            self._handle_explicit_ack(src, segment)
            return
        self._handle_data_segment(src, segment)

    def _handle_explicit_ack(self, src: ProcessAddress, segment: Segment) -> None:
        transfer = self._sends.get((src, segment.msg_type, segment.call_number))
        if transfer is not None:
            if self.sim.bus.active:
                self.sim.bus.emit(obs_events.ExplicitAckReceived(
                    t=self.sim.now, endpoint=self.addr, peer=src,
                    msg_type=segment.msg_type,
                    call_number=segment.call_number,
                    ack_number=segment.segment_number,
                    proc=self.process.name))
            transfer.ack_through(segment.segment_number)

    def _handle_data_segment(self, src: ProcessAddress, segment: Segment) -> None:
        # Implicit acknowledgments (§4.2.2).
        if segment.msg_type == MSG_RETURN:
            call_xfer = self._sends.get((src, MSG_CALL, segment.call_number))
            if call_xfer is not None:
                if not call_xfer.done.fired and self.sim.bus.active:
                    self.sim.bus.emit(obs_events.ImplicitAck(
                        t=self.sim.now, endpoint=self.addr, peer=src,
                        call_number=segment.call_number, by="return",
                        proc=self.process.name))
                call_xfer.complete()
        elif segment.msg_type == MSG_CALL:
            for key, transfer in list(self._sends.items()):
                if (key[0] == src and key[1] == MSG_RETURN
                        and key[2] < segment.call_number):
                    if not transfer.done.fired and self.sim.bus.active:
                        self.sim.bus.emit(obs_events.ImplicitAck(
                            t=self.sim.now, endpoint=self.addr, peer=src,
                            call_number=key[2], by="call",
                            proc=self.process.name))
                    transfer.complete()

        # Duplicate suppression for messages already delivered upward.
        if self._already_delivered(src, segment):
            if self.sim.bus.active:
                self.sim.bus.emit(obs_events.DuplicateSuppressed(
                    t=self.sim.now, endpoint=self.addr, peer=src,
                    msg_type=segment.msg_type,
                    call_number=segment.call_number,
                    proc=self.process.name))
            self._queue_control(
                seg.make_ack(segment.msg_type, segment.call_number,
                             segment.total_segments, segment.total_segments),
                src)
            return

        key = (src, segment.msg_type, segment.call_number)
        assembly = self._assemblies.get(key)
        if assembly is None:
            assembly = _IncomingAssembly(src, segment.msg_type,
                                         segment.call_number,
                                         segment.total_segments)
            self._assemblies[key] = assembly
        out_of_order = segment.segment_number > assembly.ack_number + 1
        assembly.add(segment)

        if assembly.complete:
            del self._assemblies[key]
            self._deliver(assembly, requested_ack=segment.please_ack)
            return

        if out_of_order:
            # §4.2.4: a gap was revealed; ack immediately so the sender
            # retransmits the first lost segment rather than an earlier one.
            self._queue_control(
                seg.make_ack(segment.msg_type, segment.call_number,
                             segment.total_segments, assembly.ack_number),
                src)
        elif segment.please_ack:
            self._queue_control(
                seg.make_ack(segment.msg_type, segment.call_number,
                             segment.total_segments, assembly.ack_number),
                src)

    def _deliver(self, assembly: _IncomingAssembly, requested_ack: bool) -> None:
        src = assembly.peer
        key = (src, assembly.msg_type, assembly.call_number)
        if self.sim.bus.active:
            self.sim.bus.emit(obs_events.MessageDelivered(
                t=self.sim.now, endpoint=self.addr, peer=src,
                msg_type=assembly.msg_type,
                call_number=assembly.call_number,
                size=sum(len(d) for d in assembly.received.values()),
                proc=self.process.name))
        if assembly.msg_type == MSG_CALL:
            self._remember_delivery(self._delivered_calls, src,
                                    assembly.call_number)
            # §4.2.4: the ack of a just-completed call is postponed even if
            # please_ack was set, hoping the return message arrives soon
            # enough to serve as the implicit acknowledgment.  Subsequent
            # retransmissions hit the duplicate path and are acked promptly.
            data = assembly.assemble()
            self.counters["bytes_copied"] += len(data)
            self.incoming_calls.put(CompletedMessage(
                src, MSG_CALL, assembly.call_number, data))
        else:
            self._remember_delivery(self._delivered_returns, src,
                                    assembly.call_number)
            if requested_ack:
                # A return completed by a retransmission: ack promptly so
                # the server stops retransmitting.
                self._queue_control(
                    seg.make_ack(MSG_RETURN, assembly.call_number,
                                 assembly.total, assembly.total), src)
            key = (src, assembly.call_number)
            if key in self._discarded_returns:
                self._discarded_returns.discard(key)
                return
            data = assembly.assemble()
            self.counters["bytes_copied"] += len(data)
            self._completed_returns[key] = data
            waiter = self._return_waiters.get((src, assembly.call_number))
            if waiter is not None and not waiter.fired:
                waiter.fire()

    def _already_delivered(self, src: ProcessAddress, segment: Segment) -> bool:
        if segment.msg_type == MSG_CALL:
            table = self._delivered_calls
        else:
            table = self._delivered_returns
        return segment.call_number in table.get(src, ())

    def _remember_delivery(self, table, src: ProcessAddress,
                           call_number: int) -> None:
        """Remember a delivered call number long enough to suppress replays
        of delayed duplicates (§4.2.4), bounded in size."""
        per_peer = table.setdefault(src, collections.OrderedDict())
        per_peer[call_number] = self.sim.now
        while len(per_peer) > self.config.delivered_memory:
            per_peer.popitem(last=False)

    def _queue_control(self, segment: Segment, dst: ProcessAddress) -> None:
        if segment.ack:
            self.counters["acks_queued"] += 1
            if (self.config.delayed_acks
                    and segment.msg_type in (MSG_CALL, MSG_RETURN)):
                # Coalesce: keep only the highest cumulative ack per
                # (peer, message); the scheduler flushes the batch after
                # ack_flush_interval.  Probe replies stay immediate so
                # crash detection is unaffected.
                key = (dst, segment.msg_type, segment.call_number)
                held = self._held_acks.get(key)
                if held is not None:
                    self.counters["acks_coalesced"] += 1
                    if held.segment_number > segment.segment_number:
                        segment = held
                self._held_acks[key] = segment
                if self._ack_flush_at is None:
                    self._ack_flush_at = (self.sim.now
                                          + self.config.ack_flush_interval)
                    self._ensure_scheduler()
                return
        self._pending_control.append((segment, dst))

    # ------------------------------------------------------------------

    def last_heard_from(self, peer: ProcessAddress) -> Optional[float]:
        return self._last_heard.get(peer)

    def stats(self) -> dict:
        """Protocol state occupancy — the §4.2.4 bookkeeping a
        connectionless endpoint must bound."""
        stats = {
            "outgoing_transfers": len(self._sends),
            "incoming_assemblies": len(self._assemblies),
            "buffered_returns": len(self._completed_returns),
            "peers_heard": len(self._last_heard),
            "delivered_call_memory": sum(
                len(v) for v in self._delivered_calls.values()),
            "watched_transfers": len(self._watched),
            "held_acks": len(self._held_acks),
        }
        stats.update(self.counters)
        return stats

    def sweep_idle(self, max_age: float) -> int:
        """Discard state for peers silent longer than ``max_age`` ms
        (§4.2.4: exchange state "may be discarded once sufficient time
        has passed to guarantee that no delayed segments ... can
        arrive").  Returns the number of peers swept."""
        now = self.sim.now
        stale = [peer for peer, heard in self._last_heard.items()
                 if now - heard > max_age]
        for peer in stale:
            del self._last_heard[peer]
            self._delivered_calls.pop(peer, None)
            self._delivered_returns.pop(peer, None)
            for key in [k for k in self._completed_returns if k[0] == peer]:
                del self._completed_returns[key]
            for key in [k for k in self._assemblies if k[0] == peer]:
                del self._assemblies[key]
        return len(stale)

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._receiver.kill()
            # Tear down the retransmit scheduler so no timers outlive the
            # endpoint (the per-transfer daemons used to keep running).
            if self._scheduler is not None and self._scheduler.alive:
                self._scheduler.kill()
            self._watched.clear()
            self._held_acks.clear()
            self._ack_flush_at = None
            self.sock.close()

    def _require_open(self) -> None:
        if self.closed:
            raise RuntimeError("endpoint %s is closed" % (self.addr,))
